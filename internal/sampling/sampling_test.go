package sampling

import (
	"testing"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func TestSamplingFindsExactSupports(t *testing.T) {
	db := gen.Random(2000, 15, 0.35, 3)
	minSup := db.AbsoluteSupport(0.25)
	res, err := Mine(db, minSup, Options{SampleFraction: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Every reported itemset's support must be its exact full-DB support.
	for _, s := range res.Sets.Sets {
		want := 0
		for _, tr := range db.Transactions() {
			if tr.ContainsAll(s.Items) {
				want++
			}
		}
		if s.Support != want {
			t.Fatalf("itemset %v support %d, exact %d", s.Items, s.Support, want)
		}
		if s.Support < minSup {
			t.Fatalf("itemset %v below threshold", s.Items)
		}
	}
	if res.SampleSize == 0 || res.CandidateCount == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

func TestSamplingSubsetOfExact(t *testing.T) {
	// Sampling may under-report (missed border itemsets) but never over-
	// report; when Exact, it must match the oracle exactly.
	for seed := int64(0); seed < 5; seed++ {
		db := gen.Random(1500, 12, 0.4, seed)
		minSup := db.AbsoluteSupport(0.3)
		want := oracle.Mine(db, minSup)
		res, err := Mine(db, minSup, Options{SampleFraction: 0.4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		index := map[string]int{}
		for _, s := range want.Sets {
			index[s.Key()] = s.Support
		}
		for _, s := range res.Sets.Sets {
			if sup, ok := index[s.Key()]; !ok || sup != s.Support {
				t.Fatalf("seed %d: spurious itemset %v", seed, s)
			}
		}
		if res.Exact && !res.Sets.Equal(want) {
			t.Fatalf("seed %d: certified exact but diff: %v", seed, res.Sets.Diff(want))
		}
	}
}

func TestSamplingFullFractionIsExact(t *testing.T) {
	db := gen.Random(400, 10, 0.4, 11)
	minSup := 40
	res, err := Mine(db, minSup, Options{SampleFraction: 1.0, Slack: 0.99, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Fraction 1.0 keeps each transaction with probability 1 — wait, the
	// sampler draws Bernoulli(1.0), so everything is kept.
	want := oracle.Mine(db, minSup)
	if !res.Sets.Equal(want) {
		t.Fatalf("full-sample run diff: %v", res.Sets.Diff(want))
	}
}

func TestSamplingValidation(t *testing.T) {
	db := gen.Small()
	if _, err := Mine(db, 0, Options{}); err == nil {
		t.Fatal("minsup 0 accepted")
	}
	if _, err := Mine(db, 1, Options{SampleFraction: 1.5}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
	if _, err := Mine(db, 1, Options{Slack: 2}); err == nil {
		t.Fatal("slack > 1 accepted")
	}
}

func TestSamplingEmptySample(t *testing.T) {
	db := dataset.New([][]dataset.Item{{1}, {2}})
	// Tiny fraction on a tiny DB can produce an empty sample; seed chosen
	// to make it so.
	_, err := Mine(db, 1, Options{SampleFraction: 0.0001, Seed: 3})
	if err == nil {
		t.Skip("sample happened to be non-empty; acceptable")
	}
}
