package analysis_test

import (
	"testing"

	"gpapriori/internal/analysis"
	"gpapriori/internal/analysis/analysistest"
)

// Each analyzer is proven against a failing-case package (want
// comments) and a package that must stay silent — either the same
// constructs out of scope, or the sanctioned idioms in scope.

func TestArenaRetainFlagsUnmarkedRetention(t *testing.T) {
	analysistest.Run(t, analysis.ArenaRetain, "arenaretain/pipe")
}

func TestArenaRetainAllowsScopedAndLocalUse(t *testing.T) {
	analysistest.Run(t, analysis.ArenaRetain, "arenaretain/clean")
}

func TestDeterminismFlagsMiningPackages(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism/core")
}

func TestDeterminismIgnoresOutOfScopePackages(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism/gen")
}

func TestMapOrderFlagsOrderedSinks(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/core")
}

func TestMapOrderIgnoresOutOfScopePackages(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder/other")
}

func TestFaultPathFlagsBareDeviceOps(t *testing.T) {
	analysistest.Run(t, analysis.FaultPath, "faultpath/kernels")
}

func TestFaultPathExemptsSimulatorPackage(t *testing.T) {
	analysistest.Run(t, analysis.FaultPath, "faultpath/gpusim")
}

func TestFaultPathFlagsBareDiskOpsInServer(t *testing.T) {
	analysistest.Run(t, analysis.FaultPath, "faultpath/server")
}

func TestFaultPathFlagsBareDiskOpsInCheckpoint(t *testing.T) {
	analysistest.Run(t, analysis.FaultPath, "faultpath/checkpoint")
}

func TestHTTPLimitsFlagsUnboundedServersAndBodyReads(t *testing.T) {
	analysistest.Run(t, analysis.HTTPLimits, "httplimits/bare")
}

func TestHTTPLimitsAllowsBoundedIdioms(t *testing.T) {
	analysistest.Run(t, analysis.HTTPLimits, "httplimits/clean")
}

func TestCtxThreadFlagsBrokenChains(t *testing.T) {
	analysistest.Run(t, analysis.CtxThread, "ctxthread/lib")
}

func TestCtxThreadExemptsMainPackages(t *testing.T) {
	analysistest.Run(t, analysis.CtxThread, "ctxthread/mainpkg")
}

func TestCtxThreadFlagsHTTPHandlers(t *testing.T) {
	analysistest.Run(t, analysis.CtxThread, "ctxthread/httpd")
}

func TestCtxThreadFlagsHTTPHandlersInMain(t *testing.T) {
	analysistest.Run(t, analysis.CtxThread, "ctxthread/httpmain")
}

func TestTypedErrFlagsUntypedChecks(t *testing.T) {
	analysistest.Run(t, analysis.TypedErr, "typederr/lib")
}

func TestLockHoldFlagsBlockingUnderMutex(t *testing.T) {
	analysistest.Run(t, analysis.LockHold, "lockhold/hold")
}

func TestLockHoldAllowsSanctionedIdioms(t *testing.T) {
	analysistest.Run(t, analysis.LockHold, "lockhold/clean")
}

func TestGoroLeakFlagsNonTerminatingGoroutines(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeak, "goroleak/leak")
}

func TestGoroLeakAllowsTerminatingShapes(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeak, "goroleak/clean")
}

// TestGoroLeakPeerProbeIdiom pins the probe-loop contract from
// internal/peer: the ticker+ctx.Done select passes, and the same loop
// without the Done case is a leak.
func TestGoroLeakPeerProbeIdiom(t *testing.T) {
	analysistest.Run(t, analysis.GoroLeak, "goroleak/peerprobe")
}

func TestAtomicMixFlagsMixedAccess(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix/mixed")
}

func TestAtomicMixAllowsConsistentAccess(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix, "atomicmix/clean")
}

func TestRegistryNamesAreUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analysis.ByName(a.Name) != a {
			t.Fatalf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if analysis.ByName("nope") != nil {
		t.Fatal("ByName of unknown analyzer should be nil")
	}
}
