// Hit cases: the import path ends in "checkpoint" — the other
// durability package under the fsfault discipline.
package checkpoint

import "os"

func save(path string, data []byte) error {
	f, err := os.CreateTemp("", path+".tmp*")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil { // want `direct \(\*os.File\).Sync on a durability path`
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // want `direct os.Rename on a durability path`
}
