package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1Complete(t *testing.T) {
	rows := Table1Rows()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	var buf bytes.Buffer
	WriteTable1(&buf)
	for _, name := range []string{"GPApriori", "CPU_TEST", "Borgelt", "Bodon", "Goethals"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("Table 1 output missing %s", name)
		}
	}
}

func TestTable2AllDatasets(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTable2(&buf, 0.005); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"T40I10D100K", "pumsb", "chess", "accidents"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 2 missing %s:\n%s", name, out)
		}
	}
}

func TestFigureDatasetMapping(t *testing.T) {
	want := map[string]string{
		"6a": "T40I10D100K", "6b": "pumsb", "6c": "chess", "6d": "accidents",
	}
	for id, ds := range want {
		got, err := FigureDataset(id)
		if err != nil || got != ds {
			t.Fatalf("FigureDataset(%s) = %q, %v", id, got, err)
		}
	}
	if _, err := FigureDataset("7"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunFigureSmall(t *testing.T) {
	fig, err := RunFigure("6c", Options{
		Scale:    0.05,
		Supports: []float64{0.9, 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(fig.Points))
	}
	for _, p := range fig.Points {
		gpu, ok := p.Run(AlgoGPApriori)
		if !ok || gpu.Skipped != "" {
			t.Fatalf("GPApriori missing at %v: %+v", p.RelSupport, gpu)
		}
		cpu, _ := p.Run(AlgoCPUTest)
		if gpu.Itemsets != cpu.Itemsets {
			t.Fatalf("result counts differ at %v: GPU %d, CPU %d",
				p.RelSupport, gpu.Itemsets, cpu.Itemsets)
		}
		if gpu.DeviceSeconds <= 0 {
			t.Fatal("no modeled device time")
		}
	}
	// Lower support ⇒ more itemsets (monotone growth).
	a, _ := fig.Points[0].Run(AlgoCPUTest)
	b, _ := fig.Points[1].Run(AlgoCPUTest)
	if b.Itemsets < a.Itemsets {
		t.Fatalf("itemsets shrank with lower support: %d then %d", a.Itemsets, b.Itemsets)
	}
}

func TestSpeedupHelper(t *testing.T) {
	p := SweepPoint{Runs: []RunResult{
		{Algorithm: "A", Seconds: 2},
		{Algorithm: "B", Seconds: 10},
		{Algorithm: "C", Skipped: "nope"},
	}}
	if got := p.Speedup("A", "B"); got != 5 {
		t.Fatalf("Speedup = %v, want 5", got)
	}
	if got := p.Speedup("A", "C"); got != 0 {
		t.Fatalf("Speedup vs skipped = %v, want 0", got)
	}
	if got := p.Speedup("A", "missing"); got != 0 {
		t.Fatalf("Speedup vs missing = %v, want 0", got)
	}
}

func TestWriteFigureRendersSkips(t *testing.T) {
	fig := Figure{
		ID: "6x", Dataset: "test", Scale: 1,
		Points: []SweepPoint{{
			RelSupport: 0.5, MinSupport: 10,
			Runs: []RunResult{
				{Algorithm: AlgoGPApriori, Seconds: 0.1, Itemsets: 5},
				{Algorithm: AlgoGoethals, Skipped: "too slow"},
			},
		}},
	}
	var buf bytes.Buffer
	WriteFigure(&buf, fig)
	if !strings.Contains(buf.String(), "—") {
		t.Fatalf("skipped run not rendered:\n%s", buf.String())
	}
}

func TestRunOneUnknownAlgorithm(t *testing.T) {
	fig, err := RunFigure("6c", Options{
		Scale:      0.02,
		Supports:   []float64{0.95},
		Algorithms: []string{"bogus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := fig.Points[0].Run("bogus")
	if r.Skipped == "" {
		t.Fatal("unknown algorithm not marked skipped")
	}
}

func TestEclatAndFPGrowthRunnable(t *testing.T) {
	fig, err := RunFigure("6c", Options{
		Scale:      0.05,
		Supports:   []float64{0.9},
		Algorithms: []string{AlgoEclat, AlgoFPGrowth, AlgoCPUTest},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := fig.Points[0]
	e, _ := p.Run(AlgoEclat)
	f, _ := p.Run(AlgoFPGrowth)
	c, _ := p.Run(AlgoCPUTest)
	if e.Skipped != "" || f.Skipped != "" {
		t.Fatalf("eclat/fpgrowth skipped: %q %q", e.Skipped, f.Skipped)
	}
	if e.Itemsets != c.Itemsets || f.Itemsets != c.Itemsets {
		t.Fatalf("itemset counts disagree: eclat %d fpgrowth %d cpu %d",
			e.Itemsets, f.Itemsets, c.Itemsets)
	}
}

// TestFigureShapeClaims asserts the qualitative claims of Figure 6 at a
// small scale: GPApriori (modeled) beats Borgelt and Bodon (measured) at
// every sweep point of the dense panel, and the itemset counts grow
// monotonically as support falls.
func TestFigureShapeClaims(t *testing.T) {
	fig, err := RunFigure("6c", Options{
		Scale:       0.3,
		EraPopcount: true,
		Supports:    []float64{0.9, 0.8, 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	prevSets := -1
	for _, p := range fig.Points {
		gpu, _ := p.Run(AlgoGPApriori)
		if gpu.Itemsets < prevSets {
			t.Fatalf("itemsets shrank as support fell: %d then %d", prevSets, gpu.Itemsets)
		}
		prevSets = gpu.Itemsets
		if s := p.Speedup(AlgoGPApriori, AlgoBorgelt); s <= 1 {
			t.Fatalf("GPApriori not faster than Borgelt at %.2f: %.2fx", p.RelSupport, s)
		}
		if s := p.Speedup(AlgoGPApriori, AlgoBodon); s <= 1 {
			t.Fatalf("GPApriori not faster than Bodon at %.2f: %.2fx", p.RelSupport, s)
		}
	}
}
