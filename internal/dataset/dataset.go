// Package dataset provides the horizontal transaction database underlying
// every miner in this repository, plus readers and writers for the FIMI
// repository's whitespace-separated ".dat" format (the format of the
// paper's benchmark files T40I10D100K, pumsb, chess and accidents).
//
// A transaction is a set of item ids; a database is an ordered list of
// transactions. Items are dense non-negative integers. The package also
// computes the dataset statistics reported in the paper's Table 2 (#items,
// average transaction length, #transactions) together with a density
// measure that distinguishes the dense UCI datasets from sparse synthetic
// ones.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ErrBadRow is the sentinel matched by every malformed-row error of the
// readers and of DB.Validate: errors.Is(err, ErrBadRow) distinguishes a
// broken input row from I/O errors.
var ErrBadRow = errors.New("dataset: bad row")

// RowError describes one malformed row of a transaction database.
type RowError struct {
	Row    int    // 1-based row number of the defect
	Reason string // what was wrong with it
}

func (e *RowError) Error() string {
	return fmt.Sprintf("dataset: line %d: %s", e.Row, e.Reason)
}

// Is makes errors.Is(err, ErrBadRow) true for every RowError.
func (e *RowError) Is(target error) bool { return target == ErrBadRow }

// badRowf builds a RowError for row with a formatted reason.
func badRowf(row int, format string, args ...any) error {
	return &RowError{Row: row, Reason: fmt.Sprintf(format, args...)}
}

// MaxItemID bounds item identifiers. The vertical builders allocate one
// bit vector per id up to the maximum seen, so a single stray huge id in
// an otherwise small file would silently allocate a dictionary-width
// layout of millions of empty vectors and skew every density statistic;
// Read rejects such rows instead.
const MaxItemID = 1<<24 - 1

// Item is a single item identifier. Items are small dense integers; the
// vertical builders allocate one bit vector per distinct item.
type Item = uint32

// Transaction is one database row: a strictly ascending set of items.
type Transaction []Item

// Clone returns an independent copy of the transaction.
func (t Transaction) Clone() Transaction {
	c := make(Transaction, len(t))
	copy(c, t)
	return c
}

// Contains reports whether the transaction contains item x, by binary
// search over the sorted items.
func (t Transaction) Contains(x Item) bool {
	i := sort.Search(len(t), func(i int) bool { return t[i] >= x })
	return i < len(t) && t[i] == x
}

// ContainsAll reports whether the transaction contains every item of the
// sorted itemset s — the subset test at the heart of horizontal support
// counting.
func (t Transaction) ContainsAll(s []Item) bool {
	j := 0
	for _, want := range s {
		for j < len(t) && t[j] < want {
			j++
		}
		if j >= len(t) || t[j] != want {
			return false
		}
		j++
	}
	return true
}

// DB is a horizontal transaction database.
type DB struct {
	trans []Transaction
	nItem int // 1 + max item id seen; the vertical width
}

// New builds a DB from raw transactions. Each transaction is copied,
// sorted and deduplicated so the Transaction invariants hold regardless of
// input order.
func New(trans [][]Item) *DB {
	db := &DB{trans: make([]Transaction, 0, len(trans))}
	for _, raw := range trans {
		db.Append(raw)
	}
	return db
}

// Append adds one transaction (copied, sorted, deduplicated) to the DB.
func (db *DB) Append(raw []Item) {
	t := make(Transaction, len(raw))
	copy(t, raw)
	sort.Slice(t, func(i, j int) bool { return t[i] < t[j] })
	out := t[:0]
	for i, v := range t {
		if i == 0 || v != t[i-1] {
			out = append(out, v)
		}
	}
	t = out
	if n := len(t); n > 0 && int(t[n-1])+1 > db.nItem {
		db.nItem = int(t[n-1]) + 1
	}
	db.trans = append(db.trans, t)
}

// Len returns the number of transactions.
func (db *DB) Len() int { return len(db.trans) }

// NumItems returns the width of the item universe (1 + max item id).
func (db *DB) NumItems() int { return db.nItem }

// Transaction returns the i-th transaction. The returned slice must not be
// modified.
func (db *DB) Transaction(i int) Transaction { return db.trans[i] }

// Transactions returns the backing transaction list. Callers must treat it
// as read-only.
func (db *DB) Transactions() []Transaction { return db.trans }

// AbsoluteSupport converts a relative minimum-support threshold in (0,1]
// into the minimum transaction count, rounding up as the FIM literature
// does (support ratio ≥ threshold).
func (db *DB) AbsoluteSupport(rel float64) int {
	if rel <= 0 || rel > 1 {
		panic(fmt.Sprintf("dataset: relative support %v out of (0,1]", rel))
	}
	abs := int(rel*float64(len(db.trans)) + 0.9999999)
	if abs < 1 {
		abs = 1
	}
	return abs
}

// ItemSupports returns the per-item occurrence counts — the first
// generation of Apriori's support counting.
func (db *DB) ItemSupports() []int {
	sup := make([]int, db.nItem)
	for _, t := range db.trans {
		for _, it := range t {
			sup[it]++
		}
	}
	return sup
}

// Stats holds the dataset descriptors reported in the paper's Table 2.
type Stats struct {
	NumItems  int     // distinct items actually occurring
	AvgLength float64 // average transaction length
	NumTrans  int     // number of transactions
	MaxLength int     // longest transaction
	Density   float64 // avg length / distinct items; >0.3 is "dense"
}

// Stats computes Table 2-style statistics for the database.
func (db *DB) Stats() Stats {
	seen := make([]bool, db.nItem)
	total := 0
	maxLen := 0
	for _, t := range db.trans {
		total += len(t)
		if len(t) > maxLen {
			maxLen = len(t)
		}
		for _, it := range t {
			seen[it] = true
		}
	}
	distinct := 0
	for _, s := range seen {
		if s {
			distinct++
		}
	}
	st := Stats{NumItems: distinct, NumTrans: len(db.trans), MaxLength: maxLen}
	if len(db.trans) > 0 {
		st.AvgLength = float64(total) / float64(len(db.trans))
	}
	if distinct > 0 {
		st.Density = st.AvgLength / float64(distinct)
	}
	return st
}

// Read parses the FIMI ".dat" format: one transaction per line, items as
// base-10 integers separated by spaces or tabs. Blank lines are skipped
// (they would otherwise become empty transactions that only inflate the
// denominator).
func Read(r io.Reader) (*DB, error) {
	db := &DB{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	var row []Item
	for sc.Scan() {
		line++
		row = row[:0]
		text := sc.Bytes()
		i := 0
		for i < len(text) {
			for i < len(text) && (text[i] == ' ' || text[i] == '\t' || text[i] == '\r') {
				i++
			}
			start := i
			for i < len(text) && text[i] != ' ' && text[i] != '\t' && text[i] != '\r' {
				i++
			}
			if start == i {
				continue
			}
			v, err := strconv.ParseUint(string(text[start:i]), 10, 32)
			if err != nil {
				return nil, badRowf(line, "bad item %q: %v", text[start:i], err)
			}
			if v > MaxItemID {
				return nil, badRowf(line, "item id %d exceeds MaxItemID %d", v, MaxItemID)
			}
			row = append(row, Item(v))
		}
		if len(row) > 0 {
			db.Append(row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: line %d: %w", line, err)
	}
	return db, nil
}

// Validate checks the invariants every miner relies on: no empty
// transactions (they inflate the support denominator without ever
// matching), items strictly ascending, and every id inside the declared
// dictionary width. Violations are *RowError values carrying the 1-based
// transaction number, matchable with errors.Is(err, ErrBadRow). The
// readers maintain these invariants by construction; Validate guards
// databases assembled by other means before they reach a miner.
func (db *DB) Validate() error {
	for i, t := range db.trans {
		if len(t) == 0 {
			return badRowf(i+1, "empty transaction")
		}
		for j, it := range t {
			if j > 0 && t[j-1] >= it {
				return badRowf(i+1, "items not strictly ascending: %d after %d", it, t[j-1])
			}
			if int(it) >= db.nItem {
				return badRowf(i+1, "item id %d outside dictionary width %d", it, db.nItem)
			}
		}
	}
	return nil
}

// ValidateNamed additionally checks that every item id resolves to an
// interned name — ids past the dictionary mean the database and
// dictionary are out of sync (a wrong file pairing), which would
// mis-label every mined itemset.
func (db *DB) ValidateNamed(dict *Dictionary) error {
	if err := db.Validate(); err != nil {
		return err
	}
	for i, t := range db.trans {
		for _, it := range t {
			if int(it) >= dict.Len() {
				return badRowf(i+1, "item id %d has no name in the %d-entry dictionary", it, dict.Len())
			}
		}
	}
	return nil
}

// Write serializes the database in FIMI ".dat" format.
func (db *DB) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range db.trans {
		for i, it := range t {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
