package fpgrowth

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gpapriori/internal/dataset"
)

// MineParallel is the task-parallel FP-Growth the paper's future work
// gestures at ("how to parallelize other FIM algorithm such as FPGrowth").
// The classic decomposition: after the two construction scans, each
// frequent item's conditional pattern base is an independent mining task,
// so the first-level conditional trees are distributed across worker
// goroutines. Results are identical to Mine.
func MineParallel(db *dataset.DB, minSupport, workers int) (*dataset.ResultSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpgrowth: minimum support %d must be ≥1", minSupport)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Scans 1–2, identical to the serial miner.
	supports := db.ItemSupports()
	order := make([]dataset.Item, 0, len(supports))
	for it, s := range supports {
		if s >= minSupport {
			order = append(order, dataset.Item(it))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if supports[a] != supports[b] {
			return supports[a] > supports[b]
		}
		return a < b
	})
	rank := make(map[dataset.Item]int, len(order))
	for i, it := range order {
		rank[it] = i
	}
	t := newTree()
	row := make([]dataset.Item, 0, 64)
	for _, tr := range db.Transactions() {
		row = row[:0]
		for _, it := range tr {
			if _, ok := rank[it]; ok {
				row = append(row, it)
			}
		}
		sort.Slice(row, func(i, j int) bool { return rank[row[i]] < rank[row[j]] })
		if len(row) > 0 {
			t.insert(row, 1)
		}
	}

	// Fan the first-level suffixes out over workers. Each worker extracts
	// its items' conditional trees from the shared (read-only) global tree
	// and mines them with the serial recursion into a private result set.
	items := make([]dataset.Item, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	results := make([]*dataset.ResultSet, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := &dataset.ResultSet{}
			for idx := w; idx < len(items); idx += workers {
				it := items[idx]
				rs.Add([]dataset.Item{it}, t.counts[it])
				cond := conditionalTree(t, it, minSupport)
				if len(cond.counts) > 0 {
					mineSerial(cond, []dataset.Item{it}, minSupport, rs)
				}
			}
			results[w] = rs
		}(w)
	}
	wg.Wait()

	out := &dataset.ResultSet{}
	for _, rs := range results {
		out.Sets = append(out.Sets, rs.Sets...)
	}
	return out, nil
}

// conditionalTree builds item's pruned conditional tree from t (read-only
// traversal, safe for concurrent workers).
func conditionalTree(t *tree, it dataset.Item, minSupport int) *tree {
	cond := newTree()
	for n := t.heads[it]; n != nil; n = n.next {
		var path []dataset.Item
		for p := n.parent; p != nil && p.parent != nil; p = p.parent {
			path = append(path, p.item)
		}
		for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
			path[l], path[r] = path[r], path[l]
		}
		if len(path) > 0 {
			cond.insert(path, n.count)
		}
	}
	pruned := newTree()
	prunedInsert(cond, pruned, minSupport)
	return pruned
}

// mineSerial is the serial FP-Growth recursion over one conditional tree,
// appending to rs. It mirrors the recursion in Mine.
func mineSerial(t *tree, suffix []dataset.Item, minSupport int, rs *dataset.ResultSet) {
	if path := t.singlePath(); path != nil {
		var gen func(from int, chosen []dataset.Item, minCount int)
		gen = func(from int, chosen []dataset.Item, minCount int) {
			for i := from; i < len(path); i++ {
				cnt := path[i].count
				if cnt < minSupport {
					continue
				}
				c := minCount
				if cnt < c {
					c = cnt
				}
				pick := append(chosen, path[i].item)
				rs.Add(append(pick, suffix...), c)
				gen(i+1, pick, c)
				pick = pick[:len(pick)-1]
			}
		}
		gen(0, make([]dataset.Item, 0, len(path)), int(^uint(0)>>1))
		return
	}
	items := make([]dataset.Item, 0, len(t.counts))
	for it, c := range t.counts {
		if c >= minSupport {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if t.counts[items[i]] != t.counts[items[j]] {
			return t.counts[items[i]] < t.counts[items[j]]
		}
		return items[i] < items[j]
	})
	for _, it := range items {
		newSuffix := append([]dataset.Item{it}, suffix...)
		rs.Add(newSuffix, t.counts[it])
		cond := conditionalTree(t, it, minSupport)
		if len(cond.counts) > 0 {
			mineSerial(cond, newSuffix, minSupport, rs)
		}
	}
}
