package hashtree

import (
	"math/rand"
	"testing"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gen"
)

func TestCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := gen.Random(300, 20, 0.3, 8)
	// Random 3-item candidates.
	seen := map[string]bool{}
	var cands [][]dataset.Item
	for len(cands) < 60 {
		s := dataset.NewItemset([]dataset.Item{
			dataset.Item(rng.Intn(20)), dataset.Item(rng.Intn(20)), dataset.Item(rng.Intn(20)),
		}, 0)
		if len(s.Items) != 3 || seen[s.Key()] {
			continue
		}
		seen[s.Key()] = true
		cands = append(cands, s.Items)
	}
	tree, err := New(cands, Config{Fanout: 4, LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db.Transactions() {
		tree.CountTransaction(tr)
	}
	for i, c := range cands {
		want := 0
		for _, tr := range db.Transactions() {
			if tr.ContainsAll(c) {
				want++
			}
		}
		if got := tree.Counts()[i]; got != want {
			t.Fatalf("candidate %v: hash tree %d, brute force %d", c, got, want)
		}
	}
}

func TestSplitsProduceInteriorNodes(t *testing.T) {
	// 100 pair candidates with LeafCap 4 must split the root.
	var cands [][]dataset.Item
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 12; j++ {
			cands = append(cands, []dataset.Item{dataset.Item(i), dataset.Item(j)})
		}
	}
	tree, err := New(cands, Config{Fanout: 4, LeafCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tree.LeafCount() < 2 {
		t.Fatalf("tree never split: %d leaves", tree.LeafCount())
	}
	if tree.Depth() < 1 {
		t.Fatalf("tree depth = %d", tree.Depth())
	}
}

func TestShortTransactionsSkipped(t *testing.T) {
	cands := [][]dataset.Item{{1, 2, 3}}
	tree, err := New(cands, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tree.CountTransaction(dataset.Transaction{1, 2})
	if tree.Counts()[0] != 0 {
		t.Fatal("short transaction counted")
	}
	tree.CountTransaction(dataset.Transaction{1, 2, 3})
	if tree.Counts()[0] != 1 {
		t.Fatal("exact transaction not counted")
	}
}

func TestReset(t *testing.T) {
	cands := [][]dataset.Item{{1}, {2}}
	tree, err := New(cands, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tree.CountTransaction(dataset.Transaction{1, 2})
	tree.Reset()
	for i, c := range tree.Counts() {
		if c != 0 {
			t.Fatalf("count %d = %d after Reset", i, c)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := New([][]dataset.Item{{}}, Config{}); err == nil {
		t.Fatal("empty candidate accepted")
	}
	if _, err := New([][]dataset.Item{{1, 2}, {3}}, Config{}); err == nil {
		t.Fatal("ragged candidates accepted")
	}
}

func TestDeepCandidatesDenseTransactions(t *testing.T) {
	// Dense rows exercise the subset enumeration bounds (i+need ≤ len).
	cfg := gen.Chess()
	cfg.NumTrans = 60
	db := gen.AttributeValue(cfg)
	var cands [][]dataset.Item
	// 5-item prefixes of the first transactions as candidates.
	for i := 0; i < 20 && i < db.Len(); i++ {
		tr := db.Transaction(i)
		cands = append(cands, append([]dataset.Item{}, tr[:5]...))
	}
	tree, err := New(cands, Config{Fanout: 8, LeafCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db.Transactions() {
		tree.CountTransaction(tr)
	}
	for i, c := range cands {
		want := 0
		for _, tr := range db.Transactions() {
			if tr.ContainsAll(c) {
				want++
			}
		}
		if got := tree.Counts()[i]; got != want {
			t.Fatalf("candidate %v: %d, want %d", c, got, want)
		}
	}
}
