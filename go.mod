module gpapriori

go 1.22
