// Algorithm comparison on one dataset: runs the full Table 1 roster (plus
// Eclat and FP-Growth) on the chess stand-in at one threshold, verifies
// they agree, and prints a ranking — a minimal version of what
// cmd/fimbench does across full support sweeps.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"gpapriori"
)

func main() {
	db, err := gpapriori.GeneratePaperDataset("chess", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	fmt.Printf("chess stand-in: %d positions, %d attribute-values, exactly %.0f per row\n\n",
		st.NumTrans, st.NumItems, st.AvgLength)

	type row struct {
		algo    gpapriori.Algorithm
		seconds float64
		device  float64
		sets    int
	}
	var rows []row
	want := -1
	for _, algo := range gpapriori.Algorithms() {
		if algo == gpapriori.AlgoGoethals {
			// The paper omits Goethals on dense datasets — horizontal
			// candidate-list counting cannot finish them in useful time.
			fmt.Printf("  %-14s skipped (horizontal counting is impractical on dense data)\n", algo)
			continue
		}
		t0 := time.Now()
		res, err := gpapriori.Mine(db, gpapriori.Config{
			Algorithm:       algo,
			RelativeSupport: 0.8,
			EraPopcount:     true,
			BlockSize:       64,
		})
		if err != nil {
			log.Fatal(err)
		}
		wall := time.Since(t0).Seconds()
		sec := wall
		if algo == gpapriori.AlgoGPApriori {
			// For GPApriori, wall-clock includes simulating the GPU; the
			// comparable figure is measured host + modeled device time.
			sec = res.TotalSeconds()
		}
		rows = append(rows, row{algo, sec, res.DeviceSeconds, res.Len()})
		if want == -1 {
			want = res.Len()
		} else if res.Len() != want {
			log.Fatalf("%s found %d itemsets, expected %d", algo, res.Len(), want)
		}
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].seconds < rows[j].seconds })
	fmt.Printf("\nall %d algorithms agree: %d frequent itemsets at 80%% support\n\n", len(rows), want)
	fmt.Printf("%-16s %12s %s\n", "algorithm", "seconds", "note")
	for _, r := range rows {
		note := "measured"
		if r.device > 0 {
			note = fmt.Sprintf("measured host + modeled device (%.3gs)", r.device)
		}
		fmt.Printf("%-16s %12.4g %s\n", r.algo, r.seconds, note)
	}
}
