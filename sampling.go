package gpapriori

import (
	"fmt"

	"gpapriori/internal/apriori"
	"gpapriori/internal/bitset"
	"gpapriori/internal/sampling"
)

// SamplingConfig parameterizes approximate, sampling-based mining
// (Toivonen-style: mine a sample at a lowered threshold, verify exactly
// against the full database in one scan).
type SamplingConfig struct {
	// Fraction of transactions to sample (default 0.1).
	Fraction float64
	// Slack multiplicatively lowers the sample threshold to reduce false
	// negatives (default 0.8).
	Slack float64
	// Seed drives the deterministic sampler.
	Seed int64
}

// SampledResult is the outcome of approximate mining. Supports are always
// exact (they come from the verification scan); the caveat is possible
// missing itemsets when Exact is false.
type SampledResult struct {
	Result
	// SampleSize is the number of transactions mined in the first phase.
	SampleSize int
	// Candidates is how many sample-frequent itemsets were verified.
	Candidates int
	// Exact reports whether the negative-border check certified the
	// result complete. When false, re-mine exactly (Mine) if completeness
	// matters.
	Exact bool
}

// MineSampled runs sampling-based approximate mining. Only the support
// threshold fields of cfg are used (the verification pass is bitset-based
// regardless of Algorithm).
func MineSampled(db *Database, cfg Config, sc SamplingConfig) (*SampledResult, error) {
	if db == nil || db.db.Len() == 0 {
		return nil, fmt.Errorf("gpapriori: empty database")
	}
	minSup, err := cfg.resolveSupport(db)
	if err != nil {
		return nil, err
	}
	res, err := sampling.Mine(db.db, minSup, sampling.Options{
		SampleFraction: sc.Fraction,
		Slack:          sc.Slack,
		Seed:           sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &SampledResult{
		Result:     Result{Algorithm: "sampling", MinSupport: minSup},
		SampleSize: res.SampleSize,
		Candidates: res.CandidateCount,
		Exact:      res.Exact,
	}
	res.Sets.Sort()
	out.Itemsets = make([]Itemset, res.Sets.Len())
	for i, s := range res.Sets.Sets {
		out.Itemsets[i] = Itemset{Items: s.Items, Support: s.Support}
	}
	return out, nil
}

// MineTopK returns the k most frequent itemsets of length ≥ minLen
// without a support threshold: the level-wise miner runs on a descending
// threshold schedule until k itemsets qualify. cfg selects the counting
// algorithm for the underlying runs (level-wise CPU algorithms only;
// AlgoGPApriori and depth-first miners fall back to AlgoCPUBitset).
func MineTopK(db *Database, k, minLen int, cfg Config) (*Result, error) {
	if db == nil || db.db.Len() == 0 {
		return nil, fmt.Errorf("gpapriori: empty database")
	}
	var counter apriori.Counter
	switch cfg.Algorithm {
	case AlgoBorgelt:
		counter = apriori.NewBorgelt(db.db)
	case AlgoBodon:
		counter = apriori.NewBodon(db.db)
	case AlgoGoethals:
		counter = apriori.NewGoethals(db.db)
	case AlgoHashTree:
		counter = apriori.NewHashTree(db.db)
	case AlgoParallelCPU:
		counter = apriori.NewParallelBitset(db.db, bitset.PopcountHardware, cfg.Workers)
	default:
		kind := bitset.PopcountHardware
		if cfg.EraPopcount {
			kind = bitset.PopcountTable8
		}
		counter = apriori.NewCPUBitset(db.db, kind)
	}
	rs, threshold, err := apriori.MineTopK(db.db, k, minLen, counter, apriori.Config{MaxLen: cfg.MaxLen})
	if err != nil {
		return nil, err
	}
	out := &Result{Algorithm: "top-k", MinSupport: threshold}
	out.Itemsets = make([]Itemset, rs.Len())
	for i, s := range rs.Sets {
		out.Itemsets[i] = Itemset{Items: s.Items, Support: s.Support}
	}
	return out, nil
}
