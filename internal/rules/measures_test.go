package rules

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func sampleRules(t *testing.T) []Rule {
	t.Helper()
	db := gen.Small()
	rs := oracle.Mine(db, 1)
	rules, err := Generate(rs, db.Len(), 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no sample rules")
	}
	return rules
}

func TestMeasuresHandDerived(t *testing.T) {
	// P(X)=0.5, P(Y)=0.5, P(XY)=0.4 → conf 0.8, lift 1.6.
	r := Rule{Support: 0.4, Confidence: 0.8, Lift: 1.6}
	m := MeasuresOf(r)
	if math.Abs(m.Conviction-(1-0.5)/(1-0.8)) > 1e-12 {
		t.Fatalf("conviction = %v, want 2.5", m.Conviction)
	}
	if math.Abs(m.Leverage-(0.4-0.25)) > 1e-12 {
		t.Fatalf("leverage = %v, want 0.15", m.Leverage)
	}
	if math.Abs(m.Jaccard-0.4/0.6) > 1e-12 {
		t.Fatalf("jaccard = %v, want 2/3", m.Jaccard)
	}
}

func TestMeasuresExactRuleConvictionInf(t *testing.T) {
	r := Rule{Support: 0.5, Confidence: 1.0, Lift: 2.0}
	if m := MeasuresOf(r); !math.IsInf(m.Conviction, 1) {
		t.Fatalf("conviction = %v, want +Inf", m.Conviction)
	}
}

func TestMeasuresIndependentRule(t *testing.T) {
	// Independence: lift 1 → leverage 0.
	r := Rule{Support: 0.25, Confidence: 0.5, Lift: 1.0}
	if m := MeasuresOf(r); math.Abs(m.Leverage) > 1e-12 {
		t.Fatalf("leverage of independent rule = %v", m.Leverage)
	}
}

func TestTopKOrdersByKey(t *testing.T) {
	rules := sampleRules(t)
	for _, key := range []string{"confidence", "lift", "support", "leverage", "conviction"} {
		top, err := TopK(rules, 5, key)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if len(top) > 5 {
			t.Fatalf("%s: TopK returned %d", key, len(top))
		}
		score, _ := scorer(key)
		for i := 1; i < len(top); i++ {
			if score(top[i-1]) < score(top[i]) {
				t.Fatalf("%s: not descending at %d", key, i)
			}
		}
	}
	if _, err := TopK(rules, 3, "nope"); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestTopKLargerThanInput(t *testing.T) {
	rules := sampleRules(t)
	top, err := TopK(rules, len(rules)+100, "lift")
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != len(rules) {
		t.Fatalf("TopK padded: %d vs %d", len(top), len(rules))
	}
}

func TestWriteCSV(t *testing.T) {
	rules := sampleRules(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rules); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rules)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(rules)+1)
	}
	if !strings.HasPrefix(lines[0], "antecedent,consequent,support") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rules := sampleRules(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rules); err != nil {
		t.Fatal(err)
	}
	var back []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rules) {
		t.Fatalf("JSON has %d rules, want %d", len(back), len(rules))
	}
	for _, r := range back {
		if _, ok := r["confidence"]; !ok {
			t.Fatal("JSON rule missing confidence")
		}
	}
}

func TestMeasuresConsistentWithGenerate(t *testing.T) {
	// Leverage recomputed from first principles must match MeasuresOf for
	// rules produced by Generate.
	db := dataset.New([][]dataset.Item{
		{0, 1}, {0, 1}, {0}, {1}, {2},
	})
	rs := oracle.Mine(db, 1)
	rules, err := Generate(rs, db.Len(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Antecedent) != 1 || len(r.Consequent) != 1 {
			continue
		}
		supOf := func(items []dataset.Item) float64 {
			n := 0
			for _, tr := range db.Transactions() {
				if tr.ContainsAll(items) {
					n++
				}
			}
			return float64(n) / float64(db.Len())
		}
		pX := supOf(r.Antecedent)
		pY := supOf(r.Consequent)
		union := dataset.NewItemset(append(append([]dataset.Item{}, r.Antecedent...), r.Consequent...), 0)
		pXY := supOf(union.Items)
		m := MeasuresOf(r)
		if math.Abs(m.Leverage-(pXY-pX*pY)) > 1e-9 {
			t.Fatalf("rule %v: leverage %v, first-principles %v", r, m.Leverage, pXY-pX*pY)
		}
	}
}
