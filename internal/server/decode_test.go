package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestDecodeMineRequestAccepts(t *testing.T) {
	for _, body := range []string{
		`{"dataset":"q","min_support":5}`,
		`{"dataset":"q","relative_support":0.5,"algorithm":"eclat"}`,
		`{"dataset":"q","min_support":1,"max_len":4,"priority":10,"deadline_sec":30,
		  "workers":4,"devices":2,"hybrid_cpu_share":0.25,"prefix_cache":true,
		  "prefix_cache_budget_mb":16,"pipeline_grain":256,"pipeline_steal_batch":8,
		  "faults":"dev0:kernel-fail@gen2","fault_seed":7,"no_cache":true}`,
	} {
		if _, se := DecodeMineRequest(strings.NewReader(body)); se != nil {
			t.Errorf("%s: unexpected reject: %v", body, se)
		}
	}
}

func TestDecodeMineRequestRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"not json", `mine all the things`},
		{"wrong type", `[1,2,3]`},
		{"unknown field", `{"dataset":"q","min_support":5,"turbo":true}`},
		{"trailing garbage", `{"dataset":"q","min_support":5}{"again":1}`},
		{"no dataset", `{"min_support":5}`},
		{"bad dataset name", `{"dataset":"a/b","min_support":5}`},
		{"no support", `{"dataset":"q"}`},
		{"both supports", `{"dataset":"q","min_support":5,"relative_support":0.5}`},
		{"negative support", `{"dataset":"q","min_support":-1}`},
		{"relative over one", `{"dataset":"q","relative_support":1.5}`},
		{"negative relative", `{"dataset":"q","relative_support":-0.5}`},
		{"unknown algorithm", `{"dataset":"q","min_support":5,"algorithm":"quantum"}`},
		{"absurd max_len", `{"dataset":"q","min_support":5,"max_len":9999999}`},
		{"negative max_len", `{"dataset":"q","min_support":5,"max_len":-1}`},
		{"absurd priority", `{"dataset":"q","min_support":5,"priority":99999999}`},
		{"negative deadline", `{"dataset":"q","min_support":5,"deadline_sec":-3}`},
		{"absurd deadline", `{"dataset":"q","min_support":5,"deadline_sec":1e18}`},
		{"absurd workers", `{"dataset":"q","min_support":5,"workers":99999}`},
		{"absurd devices", `{"dataset":"q","min_support":5,"devices":99999}`},
		{"bad hybrid share", `{"dataset":"q","min_support":5,"hybrid_cpu_share":2}`},
		{"bad fault spec", `{"dataset":"q","min_support":5,"faults":"dev0:meltdown@gen1"}`},
		{"removed cache_blocked knob", `{"dataset":"q","min_support":5,"cache_blocked":true}`},
		{"negative pipeline grain", `{"dataset":"q","min_support":5,"pipeline_grain":-1}`},
		{"absurd steal batch", `{"dataset":"q","min_support":5,"pipeline_steal_batch":99999999}`},
	}
	for _, c := range cases {
		req, se := DecodeMineRequest(strings.NewReader(c.body))
		if se == nil {
			t.Errorf("%s: accepted %+v, want 400", c.name, req)
			continue
		}
		if se.Status != http.StatusBadRequest || se.Code != "bad_request" {
			t.Errorf("%s: got %d/%s, want 400/bad_request", c.name, se.Status, se.Code)
		}
		if se.Message == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}
