package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	var log bytes.Buffer
	cases := []struct {
		name     string
		datasets []string
		want     string
	}{
		{"no datasets", nil, "-dataset"},
		{"missing equals", []string{"chess"}, "name=spec"},
		{"bad spec", []string{"chess=gen:chess:7.0"}, "scale"},
		{"bad name", []string{"a/b=gen:chess:0.1"}, "reserved"},
	}
	for _, c := range cases {
		opts := defaultOptions()
		opts.datasets = c.datasets
		opts.memMB = 64
		opts.cacheMB = 0
		opts.drainSec = 1
		err := run(&log, opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestRunRejectsBadTimeouts holds the new transport flags to their
// validated bounds: a zero or absurd timeout is a startup error, not a
// silently disabled defense.
func TestRunRejectsBadTimeouts(t *testing.T) {
	var log bytes.Buffer
	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"zero read-header", func(o *options) { o.readHeaderTimeout = 0 }, "-read-header-timeout"},
		{"huge read-header", func(o *options) { o.readHeaderTimeout = time.Hour }, "-read-header-timeout"},
		{"negative idle", func(o *options) { o.idleTimeout = -time.Second }, "-idle-timeout"},
		{"negative body", func(o *options) { o.maxBodyKB = -1 }, "-max-body-kb"},
		{"huge handler", func(o *options) { o.handlerTimeout = time.Hour }, "HandlerTimeout"},
		{"tiny body", func(o *options) { o.maxBodyKB = 1 }, "MaxBodyBytes"},
	}
	for _, c := range cases {
		opts := defaultOptions()
		opts.datasets = []string{"toy=quest:40:80:6:3"}
		opts.memMB = 64
		opts.cacheMB = 0
		c.mut(&opts)
		err := run(&log, opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestRunServesAndDrainsOnSIGTERM boots the daemon on a random port,
// waits for the port file, checks /healthz, then delivers SIGTERM to
// the process and expects run to drain and return nil — the exact
// contract init systems rely on for a clean rolling restart.
func TestRunServesAndDrainsOnSIGTERM(t *testing.T) {
	dir := t.TempDir()
	portFile := filepath.Join(dir, "port")
	var log safeBuffer
	done := make(chan error, 1)
	go func() {
		opts := defaultOptions()
		opts.datasets = []string{"toy=quest:40:80:6:3"}
		opts.memMB = 64
		opts.cacheMB = 4
		opts.stateDir = dir
		opts.portFile = portFile
		opts.drainSec = 10
		done <- run(&log, opts)
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, err := os.ReadFile(portFile)
		if err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before serving: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("port file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	if s := log.String(); !strings.Contains(s, "drained") {
		t.Fatalf("missing drain log line:\n%s", s)
	}
}

// safeBuffer is a bytes.Buffer the daemon goroutine and the test can
// share.
type safeBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
