// Package analysis is gpalint's analyzer framework: a small, offline
// reimplementation of the golang.org/x/tools/go/analysis surface the
// project's custom analyzers need. The real x/tools module is not a
// dependency (the repo is dependency-free by policy), so the framework
// provides the same shape — Analyzer, Pass, Diagnostic, a loader, and
// an analysistest-style harness — on top of go/ast, go/parser and
// go/types alone.
//
// Each analyzer mechanically enforces one invariant the miner's
// clean-run-equivalence claim rests on; see DESIGN.md §11 for the
// catalogue. Diagnostics can be suppressed line-by-line with
//
//	//gpalint:ignore <analyzer> <reason>
//
// on, or immediately above, the offending line. The maporder analyzer
// additionally honours the dedicated
//
//	//gpalint:orderok <reason>
//
// directive for loops whose iteration order provably cannot reach an
// output (see maporder.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //gpalint:ignore directives.
	Name string
	// Doc is the one-paragraph description shown by `gpalint -help`.
	Doc string
	// Run inspects pass and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding against the current analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Inspect walks every file of the pass in source order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf resolves id to its object, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil for indirect calls,
// builtins and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// ReceiverNamed returns the named type of a method call's receiver
// (pointers dereferenced), or nil when call is not a method call.
func ReceiverNamed(info *types.Info, call *ast.CallExpr) *types.Named {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// PkgBase returns the last segment of an import path — the basis on
// which scoped analyzers (determinism, maporder) decide applicability,
// so analysistest packages named like the real targets exercise the
// same matching.
func PkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// directives maps file → set of lines carrying an ignore for a given
// analyzer name (or "*").
type directiveKey struct {
	file string
	line int
}

const (
	ignorePrefix  = "//gpalint:ignore"
	orderOKPrefix = "//gpalint:orderok"
)

// collectIgnores scans the files' comments for //gpalint:ignore
// directives and returns the (file, line) → analyzer-names map. A
// directive suppresses findings on its own line and the line below it
// (so it can sit on the preceding line, nolint-style).
func collectIgnores(fset *token.FileSet, files []*ast.File) map[directiveKey]map[string]bool {
	out := map[directiveKey]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				name := "*"
				if fields := strings.Fields(rest); len(fields) > 0 {
					name = fields[0]
				}
				pos := fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := directiveKey{pos.Filename, line}
					if out[k] == nil {
						out[k] = map[string]bool{}
					}
					out[k][name] = true
				}
			}
		}
	}
	return out
}

// Directive is one gpalint suppression directive with its reason text
// — the audit surface behind `gpalint -ignores`. The directive policy
// (DESIGN.md §16) requires every suppression to say why; a bare
// directive is a policy violation the audit mode turns into a build
// failure.
type Directive struct {
	// File and Line locate the directive comment.
	File string
	Line int
	// Kind is "ignore" or "orderok".
	Kind string
	// Analyzer is the suppressed analyzer name (or "*") for ignore
	// directives; empty for orderok.
	Analyzer string
	// Reason is the free-text justification after the analyzer name.
	Reason string
}

// Directives returns every //gpalint:ignore and //gpalint:orderok
// directive in files, in source order. (//gpalint:arena-scoped is a
// type marker, not a suppression, and is not audited here.)
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var d Directive
				switch {
				case strings.HasPrefix(text, ignorePrefix):
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					d = Directive{Kind: "ignore", Analyzer: "*"}
					if fields := strings.Fields(rest); len(fields) > 0 {
						d.Analyzer = fields[0]
						d.Reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
					}
				case strings.HasPrefix(text, orderOKPrefix):
					d = Directive{
						Kind:   "orderok",
						Reason: strings.TrimSpace(strings.TrimPrefix(text, orderOKPrefix)),
					}
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				d.File, d.Line = pos.Filename, pos.Line
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// HasOrderOK reports whether an //gpalint:orderok directive covers the
// line of pos (same line or the line above).
func HasOrderOK(fset *token.FileSet, files []*ast.File, pos token.Pos) bool {
	want := fset.Position(pos)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(strings.TrimSpace(c.Text), orderOKPrefix) {
					continue
				}
				p := fset.Position(c.Pos())
				if p.Filename == want.Filename && (p.Line == want.Line || p.Line+1 == want.Line) {
					return true
				}
			}
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to pkg and returns the surviving
// diagnostics in position order, //gpalint:ignore directives applied.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
		for _, d := range pass.diags {
			pos := pkg.Fset.Position(d.Pos)
			if names := ignores[directiveKey{pos.Filename, pos.Line}]; names[a.Name] || names["*"] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
