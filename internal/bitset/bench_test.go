package bitset

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchWidths spans a cache-resident vector, an L2-sized one, and a
// streaming one (bits ≈ transactions, so these bracket the paper's
// Table 2 databases after scaling).
var benchWidths = []int{1 << 12, 1 << 16, 1 << 20}

func benchBitsets(nbits, n int, p float64) []*Bitset {
	rng := rand.New(rand.NewSource(42))
	out := make([]*Bitset, n)
	for i := range out {
		out[i] = randBitset(nbits, p, rng)
	}
	return out
}

func BenchmarkAndCount(b *testing.B) {
	for _, nbits := range benchWidths {
		b.Run(fmt.Sprintf("bits=%d", nbits), func(b *testing.B) {
			vs := benchBitsets(nbits, 2, 0.5)
			b.SetBytes(int64(len(vs[0].words) * 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = vs[0].AndCount(vs[1])
			}
		})
	}
}

func BenchmarkIntersectCountMany(b *testing.B) {
	for _, nbits := range benchWidths {
		for _, k := range []int{3, 6} {
			b.Run(fmt.Sprintf("bits=%d/k=%d", nbits, k), func(b *testing.B) {
				vs := benchBitsets(nbits, k, 0.7)
				b.SetBytes(int64(k * len(vs[0].words) * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink = IntersectCountMany(vs)
				}
			})
		}
	}
}

// BenchmarkCountPairs is the prefix-cached inner loop: one class base
// against a batch of last-item vectors, tiled, with and without an
// attainable early-abort threshold.
func BenchmarkCountPairs(b *testing.B) {
	const batch = 32
	for _, nbits := range benchWidths {
		for _, minsup := range []int{0, 1 << 30} {
			label := "abort=off"
			if minsup > 0 {
				label = "abort=on"
			}
			b.Run(fmt.Sprintf("bits=%d/%s", nbits, label), func(b *testing.B) {
				vs := benchBitsets(nbits, batch+1, 0.5)
				base, others := vs[0], vs[1:]
				bc := NewBatchCounter(PopcountHardware, DefaultTileWords)
				out := make([]int, batch)
				b.SetBytes(int64((batch + 1) * len(base.words) * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bc.CountPairs(base, others, minsup, out)
				}
			})
		}
	}
}

func BenchmarkIndices(b *testing.B) {
	for _, density := range []float64{0.01, 0.5} {
		b.Run(fmt.Sprintf("density=%v", density), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			v := randBitset(1<<16, density, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinkIdx = v.Indices()
			}
		})
	}
}

var (
	sink    int
	sinkIdx []int
)
