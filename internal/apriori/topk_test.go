package apriori

import (
	"testing"

	"gpapriori/internal/bitset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func TestTopKMatchesOracleRanking(t *testing.T) {
	db := gen.Random(150, 12, 0.4, 13)
	c := NewCPUBitset(db, bitset.PopcountHardware)
	for _, k := range []int{1, 5, 20} {
		got, threshold, err := MineTopK(db, k, 1, c, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != k {
			t.Fatalf("k=%d returned %d itemsets", k, got.Len())
		}
		// The k-th best support from the oracle at threshold must not beat
		// anything we returned.
		full := oracle.Mine(db, 1)
		best := make([]int, 0, full.Len())
		for _, s := range full.Sets {
			best = append(best, s.Support)
		}
		// Descending supports.
		for i := 0; i < len(best); i++ {
			for j := i + 1; j < len(best); j++ {
				if best[j] > best[i] {
					best[i], best[j] = best[j], best[i]
				}
			}
		}
		kth := best[k-1]
		for _, s := range got.Sets {
			if s.Support < kth {
				t.Fatalf("k=%d: returned support %d below true k-th %d", k, s.Support, kth)
			}
		}
		if threshold < 1 {
			t.Fatalf("threshold = %d", threshold)
		}
	}
}

func TestTopKMinLen(t *testing.T) {
	db := gen.Small()
	c := NewBodon(db)
	got, _, err := MineTopK(db, 3, 2, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got.Sets {
		if len(s.Items) < 2 {
			t.Fatalf("minLen=2 returned singleton %v", s.Items)
		}
	}
	if got.Len() != 3 {
		t.Fatalf("returned %d itemsets, want 3", got.Len())
	}
	// {3,4} has support 4 — must be first by ranking.
	top := got.Sets[0]
	if top.Key() != "3 4" || top.Support != 4 {
		t.Fatalf("top itemset = %v", top)
	}
}

func TestTopKFewerThanKExist(t *testing.T) {
	db := gen.Small()
	c := NewBorgelt(db)
	got, threshold, err := MineTopK(db, 10000, 1, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Mine(db, 1)
	if got.Len() != want.Len() {
		t.Fatalf("asked for more than exist: got %d, universe has %d", got.Len(), want.Len())
	}
	if threshold != 1 {
		t.Fatalf("threshold = %d, want 1", threshold)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	db := gen.Small()
	c := NewBodon(db)
	a, _, err := MineTopK(db, 4, 1, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MineTopK(db, 4, 1, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("top-k not deterministic")
	}
}

func TestTopKValidation(t *testing.T) {
	db := gen.Small()
	c := NewBodon(db)
	if _, _, err := MineTopK(db, 0, 1, c, Config{}); err == nil {
		t.Fatal("k=0 accepted")
	}
}
