package gpapriori

import (
	"gpapriori/internal/dataset"
	"gpapriori/internal/postprocess"
)

// ClosedItemsets condenses a mining result to its closed itemsets — those
// with no proper superset of identical support. The summary is lossless:
// the full collection (with supports) is recoverable from it.
func ClosedItemsets(res *Result) *Result {
	return condense(res, postprocess.Closed)
}

// MaximalItemsets condenses a mining result to its maximal itemsets —
// those with no frequent proper superset. Smaller than the closed summary
// but lossy (subset supports are not recoverable).
func MaximalItemsets(res *Result) *Result {
	return condense(res, postprocess.Maximal)
}

func condense(res *Result, f func(*dataset.ResultSet) *dataset.ResultSet) *Result {
	if res == nil {
		return nil
	}
	rs := &dataset.ResultSet{}
	for _, s := range res.Itemsets {
		rs.Add(s.Items, s.Support)
	}
	out := f(rs)
	condensed := &Result{
		Algorithm:  res.Algorithm,
		MinSupport: res.MinSupport,
		Itemsets:   make([]Itemset, out.Len()),
	}
	for i, s := range out.Sets {
		condensed.Itemsets[i] = Itemset{Items: s.Items, Support: s.Support}
	}
	return condensed
}
