// Quickstart: mine frequent itemsets from a small in-memory database with
// GPApriori and print them — the worked example of the paper's Figure 2.
package main

import (
	"fmt"
	"log"

	"gpapriori"
)

func main() {
	// The transaction database of the paper's Figure 2: four baskets over
	// items 1..7.
	db := gpapriori.NewDatabase([][]gpapriori.Item{
		{1, 2, 3, 4, 5},
		{2, 3, 4, 5, 6},
		{3, 4, 6, 7},
		{1, 3, 4, 5, 6},
	})

	// Mine with GPApriori (trie candidate generation on the host, bitset
	// complete-intersection support counting on the simulated GPU) at 50%
	// minimum support.
	res, err := gpapriori.Mine(db, gpapriori.Config{
		Algorithm:       gpapriori.AlgoGPApriori,
		RelativeSupport: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d frequent itemsets at support ≥ %d/%d transactions:\n",
		res.Len(), res.MinSupport, db.Len())
	for _, s := range res.Itemsets {
		fmt.Printf("  %v  support=%d\n", s.Items, s.Support)
	}

	// The same mine with a CPU baseline gives identical results — every
	// algorithm in the library is interchangeable.
	cpu, err := gpapriori.Mine(db, gpapriori.Config{
		Algorithm:       gpapriori.AlgoFPGrowth,
		RelativeSupport: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFP-Growth agrees: %d itemsets\n", cpu.Len())
	fmt.Printf("GPApriori modeled device time: %.3gs (host %.3gs)\n",
		res.DeviceSeconds, res.HostSeconds)
}
