package gpapriori

// This file holds the benchmark harness entry points: one testing.B
// benchmark per table and figure of the paper's evaluation (Section V),
// plus ablation benchmarks for the design choices DESIGN.md §6 calls out.
//
// Benchmarks report paper-relevant custom metrics beyond ns/op:
//
//	modeled_gpu_s    modeled device seconds (gpusim Tesla T10 model)
//	speedup_vs_*     time ratio against the named baseline
//
// Dataset scales are kept small so `go test -bench=.` completes in
// minutes; cmd/fimbench runs the same harness at larger scales.

import (
	"fmt"
	"testing"
	"time"

	"gpapriori/internal/apriori"
	"gpapriori/internal/bench"
	"gpapriori/internal/bitset"
	"gpapriori/internal/cluster"
	"gpapriori/internal/core"
	"gpapriori/internal/dataset"
	"gpapriori/internal/eclat"
	"gpapriori/internal/fpgrowth"
	"gpapriori/internal/gen"
	"gpapriori/internal/gpusim"
	"gpapriori/internal/kernels"
	"gpapriori/internal/sampling"
	"gpapriori/internal/vertical"
)

// ---------------------------------------------------------------------------
// Table 1 — algorithm roster: every tested miner over one dataset.

func BenchmarkTable1AlgorithmRoster(b *testing.B) {
	db, err := gen.Paper("chess", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.85)
	counters := []apriori.Counter{
		apriori.NewCPUBitset(db, bitset.PopcountHardware),
		apriori.NewBorgelt(db),
		apriori.NewBodon(db),
	}
	for _, c := range counters {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("GPApriori(gpusim)", func(b *testing.B) {
		m, err := core.New(db, core.Options{Kernel: kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}})
		if err != nil {
			b.Fatal(err)
		}
		var modeled float64
		for i := 0; i < b.N; i++ {
			rep, err := m.Mine(minSup, apriori.Config{})
			if err != nil {
				b.Fatal(err)
			}
			modeled = rep.Device.Total()
		}
		b.ReportMetric(modeled, "modeled_gpu_s")
	})
}

// ---------------------------------------------------------------------------
// Table 2 — dataset statistics: generator throughput and stat fidelity.

func BenchmarkTable2Datasets(b *testing.B) {
	for _, name := range gen.PaperDatasets {
		b.Run(name, func(b *testing.B) {
			var st dataset.Stats
			for i := 0; i < b.N; i++ {
				db, err := gen.Paper(name, 0.01)
				if err != nil {
					b.Fatal(err)
				}
				st = db.Stats()
			}
			pub := bench.Table2Published[name]
			b.ReportMetric(st.AvgLength, "avg_len")
			b.ReportMetric(pub.AvgLen, "paper_avg_len")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 6 — one benchmark per panel. Each runs the full algorithm roster
// at a representative (mid-sweep) threshold and reports the paper's two
// speedup series: GPApriori vs Borgelt and GPApriori vs CPU_TEST.

func benchmarkFigurePoint(b *testing.B, figureID string, scale, relSupport float64) {
	b.Helper()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = bench.RunFigure(figureID, bench.Options{
			Scale:       scale,
			Supports:    []float64{relSupport},
			EraPopcount: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := fig.Points[0]
	gpu, _ := p.Run(bench.AlgoGPApriori)
	b.ReportMetric(float64(gpu.Itemsets), "itemsets")
	b.ReportMetric(gpu.DeviceSeconds, "modeled_gpu_s")
	b.ReportMetric(p.Speedup(bench.AlgoGPApriori, bench.AlgoBorgelt), "speedup_vs_borgelt")
	b.ReportMetric(p.Speedup(bench.AlgoGPApriori, bench.AlgoCPUTest), "speedup_vs_cputest")
}

func BenchmarkFigure6a(b *testing.B) { benchmarkFigurePoint(b, "6a", 0.02, 0.05) }
func BenchmarkFigure6b(b *testing.B) { benchmarkFigurePoint(b, "6b", 0.02, 0.9) }
func BenchmarkFigure6c(b *testing.B) { benchmarkFigurePoint(b, "6c", 0.25, 0.8) }
func BenchmarkFigure6d(b *testing.B) { benchmarkFigurePoint(b, "6d", 0.01, 0.45) }

// ---------------------------------------------------------------------------
// Ablation: bitset vs tidset join on the device (Figure 3). The bitset
// kernel coalesces; the tidset merge join does not. Functional results are
// identical — the metric is modeled device seconds per candidate batch.

func BenchmarkAblationBitsetVsTidset(b *testing.B) {
	db, err := gen.Paper("accidents", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	cands := pairCandidates(db, db.AbsoluteSupport(0.5), 64)
	if len(cands) < 8 {
		b.Fatalf("only %d candidate pairs", len(cands))
	}

	b.Run("bitset", func(b *testing.B) {
		var modeled float64
		for i := 0; i < b.N; i++ {
			dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
			ddb, err := kernels.Upload(dev, vertical.BuildBitsets(db))
			if err != nil {
				b.Fatal(err)
			}
			dev.ResetStats()
			if _, err := ddb.SupportCounts(cands, kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}); err != nil {
				b.Fatal(err)
			}
			modeled = dev.ModeledTime().Total()
		}
		b.ReportMetric(modeled, "modeled_gpu_s")
	})
	b.Run("tidset", func(b *testing.B) {
		var modeled float64
		for i := 0; i < b.N; i++ {
			dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
			dt, err := kernels.UploadTidsets(dev, vertical.BuildTidsets(db))
			if err != nil {
				b.Fatal(err)
			}
			dev.ResetStats()
			if _, err := dt.SupportCounts(cands, 64); err != nil {
				b.Fatal(err)
			}
			modeled = dev.ModeledTime().Total()
		}
		b.ReportMetric(modeled, "modeled_gpu_s")
	})
}

// ---------------------------------------------------------------------------
// Ablation: complete intersection vs cached prefix bitsets (Section IV.2).
// Complete intersection re-ANDs all k first-generation vectors; the cached
// alternative would materialize each candidate's (k−1)-prefix bitset on
// the host and ship it over PCIe every generation. The modeled transfer
// column shows why the paper chose recomputation.

func BenchmarkAblationCompleteIntersection(b *testing.B) {
	db, err := gen.Paper("chess", 0.5)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.8)
	tripleCands := tripleCandidates(db, minSup, 128)
	if len(tripleCands) < 8 {
		b.Fatalf("only %d candidate triples", len(tripleCands))
	}
	bits := vertical.BuildBitsets(db)

	b.Run("complete-intersection", func(b *testing.B) {
		var modeled gpusim.TimeBreakdown
		for i := 0; i < b.N; i++ {
			dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
			ddb, err := kernels.Upload(dev, bits)
			if err != nil {
				b.Fatal(err)
			}
			dev.ResetStats()
			if _, err := ddb.SupportCounts(tripleCands, kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}); err != nil {
				b.Fatal(err)
			}
			modeled = dev.ModeledTime()
		}
		b.ReportMetric(modeled.Total(), "modeled_gpu_s")
		b.ReportMetric(modeled.Transfer, "modeled_xfer_s")
	})
	b.Run("cached-prefix-upload", func(b *testing.B) {
		// Model the alternative: per candidate, the host uploads the
		// materialized 2-prefix bitset and the kernel ANDs it with the
		// third vector. Extra PCIe traffic per candidate = one vector.
		var modeled gpusim.TimeBreakdown
		words64 := bits.WordsPerVector()
		for i := 0; i < b.N; i++ {
			dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
			ddb, err := kernels.Upload(dev, bits)
			if err != nil {
				b.Fatal(err)
			}
			dev.ResetStats()
			prefix := bitset.New(db.Len())
			buf32 := make([]uint32, words64*2)
			scratch, err := dev.Malloc(len(buf32))
			if err != nil {
				b.Fatal(err)
			}
			pairs := make([][]dataset.Item, 1)
			for _, c := range tripleCands {
				prefix.And(bits.Vectors[c[0]], bits.Vectors[c[1]])
				for w, v := range prefix.Words() {
					buf32[2*w] = uint32(v)
					buf32[2*w+1] = uint32(v >> 32)
				}
				dev.CopyToDevice(scratch, buf32) // the per-candidate upload
				pairs[0] = []dataset.Item{c[0], c[2]}
				if _, err := ddb.SupportCounts(pairs, kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}); err != nil {
					b.Fatal(err)
				}
			}
			modeled = dev.ModeledTime()
		}
		b.ReportMetric(modeled.Total(), "modeled_gpu_s")
		b.ReportMetric(modeled.Transfer, "modeled_xfer_s")
	})
}

// ---------------------------------------------------------------------------
// Ablations: the Section IV.3 kernel optimizations. Metric is modeled
// device seconds for one generation of candidates.

func benchmarkKernelVariant(b *testing.B, opt kernels.Options) {
	b.Helper()
	db, err := gen.Paper("accidents", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	cands := tripleCandidates(db, db.AbsoluteSupport(0.5), 96)
	if len(cands) < 8 {
		b.Fatalf("only %d candidates", len(cands))
	}
	var modeled float64
	for i := 0; i < b.N; i++ {
		dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
		ddb, err := kernels.Upload(dev, vertical.BuildBitsets(db))
		if err != nil {
			b.Fatal(err)
		}
		dev.ResetStats()
		if _, err := ddb.SupportCounts(cands, opt); err != nil {
			b.Fatal(err)
		}
		modeled = dev.ModeledTime().Total()
	}
	b.ReportMetric(modeled, "modeled_gpu_s")
}

func BenchmarkAblationPreload(b *testing.B) {
	b.Run("preload-on", func(b *testing.B) {
		benchmarkKernelVariant(b, kernels.Options{BlockSize: 64, Preload: true, Unroll: 4})
	})
	b.Run("preload-off", func(b *testing.B) {
		benchmarkKernelVariant(b, kernels.Options{BlockSize: 64, Preload: false, Unroll: 4})
	})
}

func BenchmarkAblationUnroll(b *testing.B) {
	for _, u := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("unroll-%d", u), func(b *testing.B) {
			benchmarkKernelVariant(b, kernels.Options{BlockSize: 64, Preload: true, Unroll: u})
		})
	}
}

func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("block-%d", bs), func(b *testing.B) {
			benchmarkKernelVariant(b, kernels.Options{BlockSize: bs, Preload: true, Unroll: 4})
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: vertical vs horizontal layout on the CPU (Section III's "one
// order of magnitude" claim). Same miner driver, different counting.

func BenchmarkAblationVerticalVsHorizontal(b *testing.B) {
	db := gen.Quest(gen.QuestConfig{
		NumItems: 200, NumTrans: 2000, AvgTransLen: 10, AvgPatternLen: 4,
		NumPatterns: 200, Correlation: 0.5, Corruption: 0.5, Seed: 17,
	})
	minSup := db.AbsoluteSupport(0.01)
	b.Run("vertical-tidset", func(b *testing.B) {
		c := apriori.NewBorgelt(db)
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("horizontal", func(b *testing.B) {
		c := apriori.NewGoethals(db)
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation: Apriori vs FP-Growth crossover (Section II): FP-Growth wins at
// low support, Apriori at high support.

func BenchmarkAblationAprioriVsFPGrowth(b *testing.B) {
	db, err := gen.Paper("chess", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	for _, rel := range []float64{0.9, 0.7} {
		minSup := db.AbsoluteSupport(rel)
		b.Run(fmt.Sprintf("apriori-minsup-%.0f%%", rel*100), func(b *testing.B) {
			c := apriori.NewCPUBitset(db, bitset.PopcountHardware)
			for i := 0; i < b.N; i++ {
				if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fpgrowth-minsup-%.0f%%", rel*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fpgrowth.Mine(db, minSup); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: Eclat tidsets vs diffsets (Zaki–Gouda).

func BenchmarkAblationEclatDiffsets(b *testing.B) {
	db, err := gen.Paper("chess", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.75)
	for _, mode := range []eclat.Mode{eclat.Tidsets, eclat.Diffsets} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eclat.Mine(db, minSup, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the primitives the kernels are built from.

func BenchmarkBitsetAndCount(b *testing.B) {
	x := bitset.New(1 << 20)
	y := bitset.New(1 << 20)
	for i := 0; i < 1<<20; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 1<<20; i += 5 {
		y.Set(i)
	}
	b.SetBytes(int64(x.WordCount() * 8 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AndCount(y)
	}
}

func BenchmarkPopcountKinds(b *testing.B) {
	vs := make([]*bitset.Bitset, 3)
	for i := range vs {
		vs[i] = bitset.New(1 << 18)
		for j := i; j < 1<<18; j += 2 + i {
			vs[i].Set(j)
		}
	}
	for _, kind := range []bitset.PopcountKind{
		bitset.PopcountHardware, bitset.PopcountTable8, bitset.PopcountKernighan,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			f := kind.Func()
			for i := 0; i < b.N; i++ {
				bitset.IntersectCountManyWith(vs, f)
			}
		})
	}
}

func BenchmarkTidsetIntersect(b *testing.B) {
	xs := make([]uint32, 0, 1<<16)
	ys := make([]uint32, 0, 1<<16)
	for i := uint32(0); i < 1<<18; i += 3 {
		xs = append(xs, i)
	}
	for i := uint32(0); i < 1<<18; i += 5 {
		ys = append(ys, i)
	}
	x := bitset.NewTidset(xs)
	y := bitset.NewTidset(ys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectCount(y)
	}
}

func BenchmarkQuestGenerator(b *testing.B) {
	cfg := gen.T40I10D100K()
	cfg.NumTrans = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Quest(cfg)
	}
}

func BenchmarkKernelSupportCounts(b *testing.B) {
	db, err := gen.Paper("chess", 1.0)
	if err != nil {
		b.Fatal(err)
	}
	cands := pairCandidates(db, db.AbsoluteSupport(0.7), 256)
	dev := gpusim.NewDevice(gpusim.TeslaT10(), 1<<24)
	ddb, err := kernels.Upload(dev, vertical.BuildBitsets(db))
	if err != nil {
		b.Fatal(err)
	}
	opt := kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ddb.SupportCounts(cands, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cands))*float64(b.N)/b.Elapsed().Seconds(), "cands/s")
}

// ---------------------------------------------------------------------------
// helpers

// pairCandidates returns up to max frequent-item pairs of db.
func pairCandidates(db *dataset.DB, minSup, max int) [][]dataset.Item {
	var freq []dataset.Item
	for it, s := range db.ItemSupports() {
		if s >= minSup {
			freq = append(freq, dataset.Item(it))
		}
	}
	var out [][]dataset.Item
	for i := 0; i < len(freq) && len(out) < max; i++ {
		for j := i + 1; j < len(freq) && len(out) < max; j++ {
			out = append(out, []dataset.Item{freq[i], freq[j]})
		}
	}
	return out
}

// tripleCandidates returns up to max frequent-item triples of db.
func tripleCandidates(db *dataset.DB, minSup, max int) [][]dataset.Item {
	var freq []dataset.Item
	for it, s := range db.ItemSupports() {
		if s >= minSup {
			freq = append(freq, dataset.Item(it))
		}
	}
	var out [][]dataset.Item
	for i := 0; i < len(freq) && len(out) < max; i++ {
		for j := i + 1; j < len(freq) && len(out) < max; j++ {
			for k := j + 1; k < len(freq) && len(out) < max; k++ {
				out = append(out, []dataset.Item{freq[i], freq[j], freq[k]})
			}
		}
	}
	return out
}

// Silence the unused-import vet warning for time, used by ablation
// variants that measure wall-clock directly.
var _ = time.Now

// ---------------------------------------------------------------------------
// Extension benchmarks: the paper's future-work systems.

func BenchmarkExtensionMultiGPU(b *testing.B) {
	db, err := gen.Paper("accidents", 0.008)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.45)
	for _, devices := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gpus-%d", devices), func(b *testing.B) {
			m, err := core.NewMulti(db, core.MultiOptions{
				Devices: devices,
				Kernel:  kernels.Options{BlockSize: 64, Preload: true, Unroll: 4},
			})
			if err != nil {
				b.Fatal(err)
			}
			var pool float64
			for i := 0; i < b.N; i++ {
				rep, err := m.Mine(minSup, apriori.Config{})
				if err != nil {
					b.Fatal(err)
				}
				pool = rep.DeviceSeconds
			}
			b.ReportMetric(pool, "modeled_pool_s")
		})
	}
}

func BenchmarkExtensionCluster(b *testing.B) {
	db, err := gen.Paper("accidents", 0.008)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.45)
	for _, nodes := range []int{1, 4} {
		for _, net := range []cluster.NetworkConfig{cluster.GigabitEthernet(), cluster.InfinibandQDR()} {
			b.Run(fmt.Sprintf("nodes-%d-%s", nodes, net.Name), func(b *testing.B) {
				m, err := cluster.New(db, cluster.Config{
					Nodes: nodes, GPUsPerNode: 1, Network: net,
					Kernel: kernels.Options{BlockSize: 64, Preload: true, Unroll: 4},
				})
				if err != nil {
					b.Fatal(err)
				}
				var total float64
				for i := 0; i < b.N; i++ {
					rep, err := m.Mine(minSup, apriori.Config{})
					if err != nil {
						b.Fatal(err)
					}
					total = rep.TotalSeconds()
				}
				b.ReportMetric(total, "modeled_total_s")
			})
		}
	}
}

func BenchmarkExtensionGPUEclat(b *testing.B) {
	db, err := gen.Paper("chess", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.85)
	m, err := eclat.NewGPU(db, gpusim.TeslaT10(), kernels.Options{BlockSize: 64, Preload: true, Unroll: 4})
	if err != nil {
		b.Fatal(err)
	}
	var modeled float64
	for i := 0; i < b.N; i++ {
		_, t, err := m.Mine(minSup)
		if err != nil {
			b.Fatal(err)
		}
		modeled = t.Total()
	}
	b.ReportMetric(modeled, "modeled_gpu_s")
}

func BenchmarkExtensionAutoTune(b *testing.B) {
	db, err := gen.Paper("chess", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	bits := vertical.BuildBitsets(db)
	probe := pairCandidates(db, db.AbsoluteSupport(0.8), 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := kernels.AutoTune(bits, gpusim.TeslaT10(), probe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPUCountingStrategies(b *testing.B) {
	db := gen.Quest(gen.QuestConfig{
		NumItems: 150, NumTrans: 3000, AvgTransLen: 10, AvgPatternLen: 4,
		NumPatterns: 150, Correlation: 0.5, Corruption: 0.5, Seed: 23,
	})
	minSup := db.AbsoluteSupport(0.01)
	strategies := []apriori.Counter{
		apriori.NewCPUBitset(db, bitset.PopcountHardware),
		apriori.NewBorgelt(db),
		apriori.NewBodon(db),
		apriori.NewGoethals(db),
		apriori.NewHashTree(db),
		apriori.NewParallelBitset(db, bitset.PopcountHardware, 0),
	}
	cd, err := apriori.NewCountDistribution(db, 0)
	if err != nil {
		b.Fatal(err)
	}
	strategies = append(strategies, cd)
	for _, c := range strategies {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSamplingVsExact(b *testing.B) {
	db, err := gen.Paper("T40I10D100K", 0.03)
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.02)
	b.Run("exact", func(b *testing.B) {
		c := apriori.NewCPUBitset(db, bitset.PopcountHardware)
		for i := 0; i < b.N; i++ {
			if _, err := apriori.Mine(db, minSup, c, apriori.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled-10pct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.Mine(db, minSup, sampling.Options{SampleFraction: 0.1, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationPerfectExtensionPruning(b *testing.B) {
	// Dense data with duplicated structure is where PEP pays: echo items
	// that mirror frequent attributes exactly (the real-world analogue is
	// redundant encodings of one field). Measure intersections saved.
	cfg := gen.Chess()
	cfg.NumTrans = 600
	raw := gen.AttributeValue(cfg)
	rows := make([][]dataset.Item, raw.Len())
	base := dataset.Item(raw.NumItems())
	for i := 0; i < raw.Len(); i++ {
		tr := raw.Transaction(i)
		rows[i] = append([]dataset.Item{}, tr...)
		for e, src := range []dataset.Item{0, 2, 4} {
			if tr.Contains(src) {
				rows[i] = append(rows[i], base+dataset.Item(e))
			}
		}
	}
	db := dataset.New(rows)
	minSup := db.AbsoluteSupport(0.75)
	for _, pep := range []bool{false, true} {
		name := "pep-off"
		if pep {
			name = "pep-on"
		}
		b.Run(name, func(b *testing.B) {
			var stats eclat.MineStats
			for i := 0; i < b.N; i++ {
				var err error
				_, stats, err = eclat.MineOpt(db, minSup, eclat.Options{
					Mode: eclat.Diffsets, PerfectExtensionPruning: pep,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Intersections), "intersections")
			b.ReportMetric(float64(stats.PerfectExtensions), "perfect_exts")
		})
	}
}

func BenchmarkAblationAsyncPipeline(b *testing.B) {
	// Synchronous (the paper's workflow) vs CUDA-streams overlap: the
	// harness models both totals from the same run.
	db, err := gen.Paper("accidents", 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.New(db, core.Options{Kernel: kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}})
	if err != nil {
		b.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.45)
	var sync, async float64
	for i := 0; i < b.N; i++ {
		rep, err := m.Mine(minSup, apriori.Config{})
		if err != nil {
			b.Fatal(err)
		}
		sync = rep.Device.Total()
		async = rep.Device.TotalAsync()
	}
	b.ReportMetric(sync, "modeled_sync_s")
	b.ReportMetric(async, "modeled_async_s")
}
