package rules

import (
	"math"
	"testing"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func mineSmall(t *testing.T, minSup int) (*dataset.ResultSet, int) {
	t.Helper()
	db := gen.Small()
	return oracle.Mine(db, minSup), db.Len()
}

func TestGenerateBasic(t *testing.T) {
	rs, n := mineSmall(t, 2)
	rules, err := Generate(rs, n, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
	for _, r := range rules {
		if r.Confidence < 0.6 || r.Confidence > 1.0000001 {
			t.Fatalf("rule %v confidence out of range", r)
		}
		if r.Support <= 0 || r.Support > 1 {
			t.Fatalf("rule %v support out of range", r)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("rule %v has empty side", r)
		}
	}
}

func TestConfidenceExact(t *testing.T) {
	// Figure 2 DB: support({3,4}) = 4, support({3}) = 4 → conf(3⇒4) = 1.
	rs, n := mineSmall(t, 1)
	rules, err := Generate(rs, n, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == 3 &&
			len(r.Consequent) == 1 && r.Consequent[0] == 4 {
			found = true
			if math.Abs(r.Confidence-1.0) > 1e-12 {
				t.Fatalf("conf(3⇒4) = %v, want 1", r.Confidence)
			}
			if math.Abs(r.Support-1.0) > 1e-12 {
				t.Fatalf("sup(3⇒4) = %v, want 1 (4/4 transactions)", r.Support)
			}
			if math.Abs(r.Lift-1.0) > 1e-12 {
				t.Fatalf("lift(3⇒4) = %v, want 1 (consequent universal)", r.Lift)
			}
		}
	}
	if !found {
		t.Fatal("rule 3⇒4 not generated")
	}
}

func TestLiftComputation(t *testing.T) {
	// DB where 0⇒1 has lift > 1: item 1 appears in half the DB but always
	// with 0.
	db := dataset.New([][]dataset.Item{{0, 1}, {0, 1}, {2}, {3}})
	rs := oracle.Mine(db, 1)
	rules, err := Generate(rs, db.Len(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == 0 &&
			len(r.Consequent) == 1 && r.Consequent[0] == 1 {
			// conf = 1, P(1) = 0.5 → lift = 2.
			if math.Abs(r.Lift-2.0) > 1e-12 {
				t.Fatalf("lift(0⇒1) = %v, want 2", r.Lift)
			}
			return
		}
	}
	t.Fatal("rule 0⇒1 not generated")
}

func TestAllPartitionsEnumerated(t *testing.T) {
	// A single frequent 3-itemset yields 2^3-2 = 6 rules at conf 0.
	db := dataset.New([][]dataset.Item{{0, 1, 2}, {0, 1, 2}})
	rs := oracle.Mine(db, 2)
	rules, err := Generate(rs, db.Len(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, r := range rules {
		if len(r.Antecedent)+len(r.Consequent) == 3 {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("3-itemset produced %d rules, want 6", count)
	}
}

func TestMissingSubsetError(t *testing.T) {
	var rs dataset.ResultSet
	rs.Add([]dataset.Item{1, 2}, 3) // subsets {1},{2} missing
	if _, err := Generate(&rs, 10, 0.5); err == nil {
		t.Fatal("non-downward-closed input accepted")
	}
}

func TestValidation(t *testing.T) {
	rs, n := mineSmall(t, 2)
	if _, err := Generate(rs, 0, 0.5); err == nil {
		t.Fatal("numTrans=0 accepted")
	}
	if _, err := Generate(rs, n, 0); err == nil {
		t.Fatal("confidence=0 accepted")
	}
	if _, err := Generate(rs, n, 1.5); err == nil {
		t.Fatal("confidence>1 accepted")
	}
}

func TestSortOrder(t *testing.T) {
	rs, n := mineSmall(t, 1)
	rules, err := Generate(rs, n, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].Confidence < rules[i].Confidence {
			t.Fatal("rules not sorted by descending confidence")
		}
	}
}

func TestFilterByLift(t *testing.T) {
	rules := []Rule{{Lift: 0.5}, {Lift: 1.0}, {Lift: 2.0}}
	got := Filter(rules, 1.0)
	if len(got) != 2 {
		t.Fatalf("Filter kept %d rules, want 2", len(got))
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: []dataset.Item{1, 2},
		Consequent: []dataset.Item{3},
		Support:    0.4, Confidence: 0.8, Lift: 4.0 / 3,
	}
	want := "1 2 => 3 (sup=0.40 conf=0.80 lift=1.33)"
	if got := r.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
