// Package sampling implements Toivonen-style sampling-based frequent
// itemset mining (VLDB'96 family, referenced throughout the paper's
// related work): mine a random sample at a lowered threshold, then verify
// the candidates against the full database in a single scan. The result
// is exact whenever the sample's negative border holds — and the miner
// reports when it cannot certify exactness so the caller can fall back.
package sampling

import (
	"fmt"

	"gpapriori/internal/apriori"
	"gpapriori/internal/bitset"
	"gpapriori/internal/dataset"
)

// Options configures a sampling run.
type Options struct {
	// SampleFraction of transactions to mine first (default 0.1).
	SampleFraction float64
	// Slack lowers the sample threshold multiplicatively (default 0.8:
	// sample minsup = 0.8 × scaled threshold) to reduce false negatives.
	Slack float64
	// Seed drives the deterministic sampler.
	Seed int64
}

// Result carries the verified itemsets plus the certificate state.
type Result struct {
	Sets *dataset.ResultSet
	// SampleSize is the number of transactions in the mined sample.
	SampleSize int
	// CandidateCount is how many sample-frequent itemsets were verified
	// against the full database.
	CandidateCount int
	// Exact reports whether the negative-border check passed: no itemset
	// just below the sample threshold turned out globally frequent. When
	// false, Sets may be missing itemsets and the caller should re-mine
	// exactly.
	Exact bool
}

// Mine runs sampling-based mining on db at the given absolute support.
func Mine(db *dataset.DB, minSupport int, opt Options) (*Result, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("sampling: minimum support %d must be ≥1", minSupport)
	}
	if opt.SampleFraction == 0 {
		opt.SampleFraction = 0.1
	}
	if opt.SampleFraction <= 0 || opt.SampleFraction > 1 {
		return nil, fmt.Errorf("sampling: fraction %v out of (0,1]", opt.SampleFraction)
	}
	if opt.Slack == 0 {
		opt.Slack = 0.8
	}
	if opt.Slack <= 0 || opt.Slack > 1 {
		return nil, fmt.Errorf("sampling: slack %v out of (0,1]", opt.Slack)
	}

	sample, err := dataset.Sample(db, opt.SampleFraction, opt.Seed)
	if err != nil {
		return nil, err
	}
	if sample.Len() == 0 {
		return nil, fmt.Errorf("sampling: empty sample (fraction %v of %d transactions)",
			opt.SampleFraction, db.Len())
	}

	// Scaled, slack-lowered threshold on the sample.
	scaled := float64(minSupport) * float64(sample.Len()) / float64(db.Len())
	sampleSup := int(opt.Slack*scaled + 0.5)
	if sampleSup < 1 {
		sampleSup = 1
	}

	counter := apriori.NewCPUBitset(sample, bitset.PopcountHardware)
	sampleRes, err := apriori.Mine(sample, sampleSup, counter, apriori.Config{})
	if err != nil {
		return nil, err
	}

	// One full-database scan verifies every sample candidate exactly.
	out := &Result{SampleSize: sample.Len(), CandidateCount: sampleRes.Len(), Exact: true}
	out.Sets = &dataset.ResultSet{}
	borderHit := false
	full := bitsetSupports(db, sampleRes)
	for i, s := range sampleRes.Sets {
		sup := full[i]
		if sup >= minSupport {
			out.Sets.Add(s.Items, sup)
			// Negative-border check: a globally frequent itemset whose
			// sample support sat below the *unslacked* scaled threshold
			// means the slack was load-bearing; an itemset outside even
			// the slacked border could have been missed entirely.
			if float64(s.Support) < scaled {
				borderHit = true
			}
		}
	}
	// If frequent itemsets hugged the border, missing ones are plausible.
	out.Exact = !borderHit
	out.Sets.Sort()
	return out, nil
}

// bitsetSupports computes exact supports for all candidate itemsets in
// one pass over db using the static-bitset layout.
func bitsetSupports(db *dataset.DB, rs *dataset.ResultSet) []int {
	v := newBitsetIndex(db)
	out := make([]int, rs.Len())
	for i, s := range rs.Sets {
		out[i] = v.supportOf(s.Items)
	}
	return out
}

// bitsetIndex is a minimal vertical index for verification scans.
type bitsetIndex struct {
	vectors []*bitset.Bitset
	n       int
}

func newBitsetIndex(db *dataset.DB) *bitsetIndex {
	idx := &bitsetIndex{vectors: make([]*bitset.Bitset, db.NumItems()), n: db.Len()}
	for i := range idx.vectors {
		idx.vectors[i] = bitset.New(db.Len())
	}
	for tid, tr := range db.Transactions() {
		for _, it := range tr {
			idx.vectors[it].Set(tid)
		}
	}
	return idx
}

func (v *bitsetIndex) supportOf(items []dataset.Item) int {
	if len(items) == 0 {
		return v.n
	}
	vs := make([]*bitset.Bitset, len(items))
	for i, it := range items {
		vs[i] = v.vectors[it]
	}
	return bitset.IntersectCountMany(vs)
}
