// Package fpgrowth implements the FP-Growth frequent-itemset miner (Han,
// Pei & Yin, SIGMOD'00): two database scans build a frequent-pattern tree,
// and patterns are mined by recursive conditional-pattern-base projection
// without generating candidates. The paper's Section II positions
// FP-Growth as the fastest serial miner at low support but harder to
// parallelize than Apriori — our background ablation bench reproduces that
// crossover.
package fpgrowth

import (
	"fmt"
	"sort"

	"gpapriori/internal/dataset"
)

// node is one FP-tree node.
type node struct {
	item     dataset.Item
	count    int
	parent   *node
	children map[dataset.Item]*node
	next     *node // header-table chain of nodes with the same item
}

// tree is an FP-tree with its header table.
type tree struct {
	root   *node
	heads  map[dataset.Item]*node // first node of each item's chain
	counts map[dataset.Item]int   // total count per item in this tree
}

func newTree() *tree {
	return &tree{
		root:   &node{children: map[dataset.Item]*node{}},
		heads:  map[dataset.Item]*node{},
		counts: map[dataset.Item]int{},
	}
}

// insert adds one (ordered) item path with the given count.
func (t *tree) insert(items []dataset.Item, count int) {
	cur := t.root
	for _, it := range items {
		child, ok := cur.children[it]
		if !ok {
			child = &node{item: it, parent: cur, children: map[dataset.Item]*node{}}
			child.next = t.heads[it]
			t.heads[it] = child
			cur.children[it] = child
		}
		child.count += count
		t.counts[it] += count
		cur = child
	}
}

// singlePath returns the unique root-to-leaf path if the tree is a single
// chain, else nil. Single-path trees are mined combinatorially.
func (t *tree) singlePath() []*node {
	var path []*node
	cur := t.root
	for {
		if len(cur.children) == 0 {
			return path
		}
		if len(cur.children) > 1 {
			return nil
		}
		for _, c := range cur.children {
			cur = c
		}
		path = append(path, cur)
	}
}

// Mine runs FP-Growth over db at the given absolute minimum support.
func Mine(db *dataset.DB, minSupport int) (*dataset.ResultSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("fpgrowth: minimum support %d must be ≥1", minSupport)
	}
	// Scan 1: item supports; keep frequent items ordered by descending
	// support (ties by ascending id) — the canonical FP-tree item order.
	supports := db.ItemSupports()
	order := make([]dataset.Item, 0, len(supports))
	for it, s := range supports {
		if s >= minSupport {
			order = append(order, dataset.Item(it))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if supports[a] != supports[b] {
			return supports[a] > supports[b]
		}
		return a < b
	})
	rank := make(map[dataset.Item]int, len(order))
	for i, it := range order {
		rank[it] = i
	}

	// Scan 2: insert each transaction's frequent items in rank order.
	t := newTree()
	row := make([]dataset.Item, 0, 64)
	for _, tr := range db.Transactions() {
		row = row[:0]
		for _, it := range tr {
			if _, ok := rank[it]; ok {
				row = append(row, it)
			}
		}
		sort.Slice(row, func(i, j int) bool { return rank[row[i]] < rank[row[j]] })
		if len(row) > 0 {
			t.insert(row, 1)
		}
	}

	rs := &dataset.ResultSet{}
	var mine func(t *tree, suffix []dataset.Item)
	mine = func(t *tree, suffix []dataset.Item) {
		// Single-path shortcut: every subset of the path, with the count
		// of its deepest node, combined with the suffix.
		if path := t.singlePath(); path != nil {
			var gen func(from int, chosen []dataset.Item, minCount int)
			gen = func(from int, chosen []dataset.Item, minCount int) {
				for i := from; i < len(path); i++ {
					cnt := path[i].count
					if cnt < minSupport {
						continue
					}
					c := minCount
					if cnt < c {
						c = cnt
					}
					pick := append(chosen, path[i].item)
					rs.Add(append(pick, suffix...), c)
					gen(i+1, pick, c)
					pick = pick[:len(pick)-1]
				}
			}
			gen(0, make([]dataset.Item, 0, len(path)), int(^uint(0)>>1))
			return
		}
		// General case: for each frequent item (least-frequent first),
		// emit item+suffix, then mine its conditional tree.
		items := make([]dataset.Item, 0, len(t.counts))
		for it, c := range t.counts {
			if c >= minSupport {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(i, j int) bool {
			if t.counts[items[i]] != t.counts[items[j]] {
				return t.counts[items[i]] < t.counts[items[j]]
			}
			return items[i] < items[j]
		})
		for _, it := range items {
			newSuffix := append([]dataset.Item{it}, suffix...)
			rs.Add(newSuffix, t.counts[it])
			// Conditional pattern base: prefix paths of every node of it.
			cond := newTree()
			for n := t.heads[it]; n != nil; n = n.next {
				var path []dataset.Item
				for p := n.parent; p != nil && p.parent != nil; p = p.parent {
					path = append(path, p.item)
				}
				// path is leaf→root; reverse to root→leaf insertion order.
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				if len(path) > 0 {
					cond.insert(path, n.count)
				}
			}
			// Prune infrequent items from the conditional tree by
			// rebuilding it with only frequent items.
			pruned := newTree()
			prunedInsert(cond, pruned, minSupport)
			if len(pruned.counts) > 0 {
				mine(pruned, newSuffix)
			}
		}
	}
	mine(t, nil)
	return rs, nil
}

// prunedInsert rebuilds src into dst keeping only items frequent in src.
// Paths must be re-filtered (not just truncated) because an infrequent
// item can sit in the middle of a branch.
func prunedInsert(src, dst *tree, minSupport int) {
	var walk func(n *node, path []dataset.Item)
	walk = func(n *node, path []dataset.Item) {
		// Contribution of this node beyond its children (paths ending
		// here).
		childSum := 0
		for _, c := range n.children {
			childSum += c.count
		}
		if n != src.root {
			if src.counts[n.item] >= minSupport {
				path = append(path, n.item)
			}
			if end := n.count - childSum; end > 0 && len(path) > 0 {
				dst.insert(path, end)
			}
		}
		for _, c := range n.children {
			walk(c, path)
		}
	}
	walk(src.root, nil)
}

// MineRelative is Mine with a relative support threshold in (0,1].
func MineRelative(db *dataset.DB, rel float64) (*dataset.ResultSet, error) {
	return Mine(db, db.AbsoluteSupport(rel))
}
