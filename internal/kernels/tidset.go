package kernels

import (
	"fmt"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gpusim"
	"gpapriori/internal/vertical"
)

// DeviceTidsets is a tidset vertical database resident in device memory,
// used only by the Figure 3 ablation: it demonstrates why GPApriori
// rejects the tidset layout on a GPU. Tidsets are stored back-to-back
// with an offsets directory.
type DeviceTidsets struct {
	dev      *gpusim.Device
	tids     gpusim.Buffer // all transaction ids, item-major
	offsets  gpusim.Buffer // numItems+1 prefix offsets into tids
	numItems int
	numTrans int
	lengths  []int // host copy of list lengths for geometry decisions
}

// UploadTidsets flattens and uploads a tidset database.
func UploadTidsets(dev *gpusim.Device, v *vertical.TidsetDB) (*DeviceTidsets, error) {
	if len(v.Lists) == 0 {
		return nil, fmt.Errorf("kernels: empty tidset database")
	}
	offsets := make([]uint32, len(v.Lists)+1)
	total := 0
	for i, l := range v.Lists {
		offsets[i] = uint32(total)
		total += len(l)
	}
	offsets[len(v.Lists)] = uint32(total)
	flat := make([]uint32, 0, total)
	lengths := make([]int, len(v.Lists))
	for i, l := range v.Lists {
		lengths[i] = len(l)
		flat = append(flat, l...)
	}
	if total == 0 {
		return nil, fmt.Errorf("kernels: tidset database has no occurrences")
	}
	tidBuf, err := dev.Malloc(total)
	if err != nil {
		return nil, fmt.Errorf("kernels: tidset upload: %w", err)
	}
	offBuf, err := dev.Malloc(len(offsets))
	if err != nil {
		return nil, fmt.Errorf("kernels: offsets upload: %w", err)
	}
	if err := dev.TryCopyToDevice(tidBuf, flat); err != nil {
		return nil, fmt.Errorf("kernels: tidset upload: %w", err)
	}
	if err := dev.TryCopyToDevice(offBuf, offsets); err != nil {
		return nil, fmt.Errorf("kernels: offsets upload: %w", err)
	}
	return &DeviceTidsets{
		dev: dev, tids: tidBuf, offsets: offBuf,
		numItems: len(v.Lists), numTrans: v.NumTrans, lengths: lengths,
	}, nil
}

// SupportCounts computes candidate supports with a thread-per-candidate
// k-way merge join over the device tidsets. The walk advances one list
// pointer per step based on data values, so lanes of a warp touch
// unrelated addresses — the uncoalesced pattern of Figure 3(a). Functional
// results are identical to the bitset kernel; only the modeled time
// differs.
func (d *DeviceTidsets) SupportCounts(cands [][]dataset.Item, blockSize int) ([]int, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	k := len(cands[0])
	if k == 0 {
		return nil, fmt.Errorf("kernels: empty candidate")
	}
	flat := make([]uint32, 0, len(cands)*k)
	for i, c := range cands {
		if len(c) != k {
			return nil, fmt.Errorf("kernels: candidate %d has length %d, want %d", i, len(c), k)
		}
		for _, item := range c {
			if int(item) >= d.numItems {
				return nil, fmt.Errorf("kernels: candidate %d references item %d outside device DB", i, item)
			}
			flat = append(flat, uint32(item))
		}
	}
	candBuf, err := d.dev.Malloc(len(flat))
	if err != nil {
		return nil, err
	}
	outBuf, err := d.dev.Malloc(len(cands))
	if err != nil {
		return nil, err
	}
	defer d.dev.FreeAllAbove(d.offsets)
	if err := d.dev.TryCopyToDevice(candBuf, flat); err != nil {
		return nil, fmt.Errorf("kernels: candidate upload: %w", err)
	}

	grid := (len(cands) + blockSize - 1) / blockSize
	n := len(cands)
	tids, offsets := d.tids, d.offsets

	_, lerr := d.dev.TryLaunch(gpusim.LaunchConfig{Grid: grid, Block: blockSize}, func(ctx *gpusim.Ctx) {
		cand := ctx.GlobalThreadID()
		if cand >= n {
			return
		}
		// Per-candidate k-way merge join: advance the pointer with the
		// smallest head; when all heads match, count a supporting tid.
		ptr := make([]int, k)
		end := make([]int, k)
		for j := 0; j < k; j++ {
			item := int(ctx.LoadGlobal(candBuf, cand*k+j))
			ptr[j] = int(ctx.LoadGlobal(offsets, item))
			end[j] = int(ctx.LoadGlobal(offsets, item+1))
		}
		count := uint32(0)
		for {
			// Load the k heads; find max; check all-equal.
			exhausted := false
			var maxV uint32
			allEq := true
			var first uint32
			for j := 0; j < k; j++ {
				if ptr[j] >= end[j] {
					exhausted = true
					break
				}
				v := ctx.LoadGlobal(tids, ptr[j])
				if j == 0 {
					first, maxV = v, v
				} else {
					if v != first {
						allEq = false
					}
					if v > maxV {
						maxV = v
					}
				}
			}
			ctx.Compute(2 * k) // compares and pointer math
			if ctx.Branch(exhausted) {
				break
			}
			// The all-heads-equal decision is data-dependent per lane —
			// the divergence Figure 3 blames on tidset joins.
			if ctx.Branch(allEq) {
				count++
				for j := 0; j < k; j++ {
					ptr[j]++
				}
				continue
			}
			for j := 0; j < k; j++ {
				v := ctx.LoadGlobal(tids, ptr[j])
				if v < maxV {
					ptr[j]++
				}
			}
		}
		ctx.StoreGlobal(outBuf, cand, count)
	}, 0)
	if lerr != nil {
		return nil, fmt.Errorf("kernels: tidset-join launch: %w", lerr)
	}

	out32 := make([]uint32, len(cands))
	if err := d.dev.TryCopyFromDevice(out32, outBuf); err != nil {
		return nil, fmt.Errorf("kernels: support download: %w", err)
	}
	out := make([]int, len(cands))
	for i, v := range out32 {
		out[i] = int(v)
	}
	return out, nil
}
