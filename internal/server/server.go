// Package server is the gpaserve daemon: a long-lived mining service
// over the gpapriori library.
//
// The server owns four pieces and wires them together:
//
//   - a dataset Registry (registry.go): databases loaded once, mined
//     many times;
//   - the admission-controlled JobManager from the public API: every
//     mining request flows through the same queue/budget/shedding
//     machinery as batch jobs;
//   - a ResultCache (cache.go) keyed by the checkpoint fingerprint of
//     (database, support, maxlen) — sound because of clean-run
//     equivalence;
//   - an HTTP surface speaking the wire types of the root package's
//     serve.go: submit, long-poll status, per-generation NDJSON
//     streaming, cancel, /healthz, /statsz.
//
// Durability follows the checkpoint subsystem: level-wise jobs
// checkpoint into StateDir at every generation boundary, a streamed
// generation is only announced after its snapshot is durable, and
// Drain journals unfinished requests so a restarted daemon resumes
// them from their last checkpoint to the identical result.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"gpapriori"
	"gpapriori/internal/dataset"
	"gpapriori/internal/jobs"
	"gpapriori/internal/resultio"
)

// Config configures a Server.
type Config struct {
	// Registry holds the served datasets. Required; datasets cannot be
	// added after New.
	Registry *Registry
	// Jobs configures the admission controller every request runs under.
	Jobs gpapriori.JobManagerConfig
	// CacheBudgetBytes bounds the result cache (0 disables caching).
	CacheBudgetBytes int64
	// StateDir, when set, holds per-job checkpoints and the drain
	// journal. Empty disables durability: jobs neither checkpoint nor
	// survive a restart.
	StateDir string
}

// Server is the daemon core: everything but the listener.
type Server struct {
	reg      *Registry
	jm       *gpapriori.JobManager
	cache    *ResultCache
	stateDir string
	mux      *http.ServeMux

	mu       sync.Mutex
	draining bool
	jobs     map[string]*jobRecord
	nextID   int64
	// cachedSubmitted/cachedDone count cache-answered jobs, which never
	// reach the JobManager but still belong in /statsz's lifecycle view.
	cachedSubmitted int64
	cachedDone      int64
	// faults aggregates injected-fault activity across completed runs.
	faults gpapriori.FaultStats
	// wg tracks finalizer goroutines so Drain can wait them out.
	wg sync.WaitGroup
}

// jobRecord is the server-side state of one submitted job: the stream
// event log, the terminal snapshot, and the wake channel stream and
// long-poll readers block on.
type jobRecord struct {
	id      string
	dataset string
	algo    string
	minSup  int
	trans   int
	key     uint64
	// req is the submitted request, kept whole for the drain journal.
	req gpapriori.ServeMineRequest
	mj  *gpapriori.MiningJob // nil for cache-answered records

	mu sync.Mutex
	// events is append-only; readers index into it.
	events []gpapriori.ServeGenerationEvent
	// lastLen is the largest itemset length already streamed.
	lastLen  int
	terminal bool
	final    gpapriori.ServeJobInfo
	// resultBody is the resultio-canonical rendering of a done job.
	resultBody []byte
	// wake is closed (and replaced) whenever events or terminal change.
	wake chan struct{}
}

// New builds a Server, replaying any drain journal in StateDir so jobs
// interrupted by a previous shutdown resume from their checkpoints.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	jm, err := gpapriori.NewJobManager(cfg.Jobs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		reg:      cfg.Registry,
		jm:       jm,
		cache:    NewResultCache(cfg.CacheBudgetBytes),
		stateDir: cfg.StateDir,
		jobs:     map[string]*jobRecord{},
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	if err := s.replayJournal(); err != nil {
		jm.Close()
		return nil, err
	}
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// ---- submission ----

// levelWise reports whether algo has generation boundaries — the
// precondition for checkpointing and per-generation streaming.
func levelWise(algo gpapriori.Algorithm) bool {
	switch algo {
	case gpapriori.AlgoEclat, gpapriori.AlgoEclatDiffset,
		gpapriori.AlgoFPGrowth, gpapriori.AlgoPipeline:
		return false
	}
	return true
}

// ckptPath is the per-fingerprint checkpoint file. Keying by
// fingerprint rather than job ID means a resubmitted identical request
// reuses whatever progress any earlier run left behind.
func (s *Server) ckptPath(key uint64) string {
	return filepath.Join(s.stateDir, fmt.Sprintf("ckpt-%016x.ckpt", key))
}

// submit validates req against the registry, answers from the result
// cache when it can, and otherwise queues a mining job. id is empty for
// fresh submissions and fixed when replaying the drain journal.
func (s *Server) submit(req gpapriori.ServeMineRequest, id string) (*jobRecord, *gpapriori.ServeError) {
	entry, ok := s.reg.Get(req.Dataset)
	if !ok {
		return nil, &gpapriori.ServeError{Status: http.StatusNotFound, Code: "unknown_dataset",
			Message: fmt.Sprintf("dataset %q is not registered", req.Dataset)}
	}
	algo := req.Algorithm
	if algo == "" {
		algo = string(gpapriori.AlgoGPApriori)
	}
	cfg := req.MiningConfig()
	key, minSup, err := gpapriori.ResultFingerprint(entry.DB, cfg)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, &gpapriori.ServeError{Status: http.StatusServiceUnavailable,
			Code: "draining", Message: "server is draining; not admitting new jobs"}
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("job-%d", s.nextID)
	}
	rec := &jobRecord{
		id:      id,
		dataset: req.Dataset,
		algo:    algo,
		minSup:  minSup,
		trans:   entry.Info.Transactions,
		key:     key,
		req:     req,
		wake:    make(chan struct{}),
	}

	if !req.NoCache {
		if e, hit := s.cache.Get(key); hit {
			info := gpapriori.ServeJobInfo{
				ID: id, Dataset: req.Dataset, Algorithm: algo,
				State: gpapriori.JobDone.String(), Cached: true,
				MinSupport: e.minSupport, Transactions: e.transactions,
				Itemsets: len(e.itemsets),
			}
			rec.events = []gpapriori.ServeGenerationEvent{
				{Itemsets: e.itemsets, Final: true, Job: &info},
			}
			rec.terminal = true
			rec.final = info
			rec.resultBody = e.body
			s.cachedSubmitted++
			s.cachedDone++
			s.jobs[id] = rec
			return rec, nil
		}
	}

	if s.stateDir != "" && levelWise(cfg.Algorithm) {
		// Durability wiring: snapshot every generation, resume any
		// progress an interrupted earlier run of this fingerprint left.
		path := s.ckptPath(key)
		cfg.Checkpoint = path
		cfg.ResumeFrom = path
		cfg.CheckpointEvery = 1
	}
	cfg.OnGeneration = rec.addGeneration

	mj, err := s.jm.Submit(gpapriori.JobSpec{
		Name:     id,
		Priority: req.Priority,
		Deadline: time.Duration(req.DeadlineSec * float64(time.Second)),
		DB:       entry.DB,
		Config:   cfg,
	})
	if err != nil {
		return nil, mapSubmitError(err)
	}
	rec.mj = mj
	s.jobs[id] = rec
	s.wg.Add(1)
	go s.finalize(rec)
	return rec, nil
}

// mapSubmitError translates JobManager admission failures to wire
// errors.
func mapSubmitError(err error) *gpapriori.ServeError {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		return &gpapriori.ServeError{Status: http.StatusTooManyRequests,
			Code: "queue_full", Message: err.Error()}
	case errors.Is(err, jobs.ErrOverBudget):
		return &gpapriori.ServeError{Status: http.StatusRequestEntityTooLarge,
			Code: "over_budget", Message: err.Error()}
	case errors.Is(err, jobs.ErrClosed):
		return &gpapriori.ServeError{Status: http.StatusServiceUnavailable,
			Code: "draining", Message: err.Error()}
	}
	return &gpapriori.ServeError{Status: http.StatusInternalServerError,
		Code: "internal", Message: err.Error()}
}

// addGeneration is the Config.OnGeneration hook: record the itemsets
// newly completed since the last boundary as one stream event. It runs
// on the mining goroutine, after the generation's checkpoint is
// durable.
func (r *jobRecord) addGeneration(gen int, frequent []gpapriori.Itemset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.terminal {
		return
	}
	var delta []gpapriori.Itemset
	for _, s := range frequent {
		if len(s.Items) > r.lastLen {
			delta = append(delta, s)
		}
	}
	r.lastLen = gen
	if len(delta) == 0 {
		return
	}
	r.events = append(r.events, gpapriori.ServeGenerationEvent{Gen: gen, Itemsets: delta})
	r.signalLocked()
}

// signalLocked wakes every blocked reader. Callers hold r.mu.
func (r *jobRecord) signalLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// finalize waits for the job's terminal state, renders the canonical
// result body, feeds the cache and fault aggregate, and appends the
// final stream event.
func (s *Server) finalize(rec *jobRecord) {
	defer s.wg.Done()
	<-rec.mj.Done()
	res, err := rec.mj.Result()
	info := gpapriori.ServeJobInfo{
		ID: rec.id, Dataset: rec.dataset, Algorithm: rec.algo,
		State: rec.mj.State().String(), MinSupport: rec.minSup,
		Transactions: rec.trans,
	}
	var body []byte
	if err != nil {
		info.Error = err.Error()
	} else {
		info.Itemsets = len(res.Itemsets)
		info.HostSeconds = res.HostSeconds
		info.DeviceSeconds = res.DeviceSeconds
		info.Faults = res.Faults
		body = renderResult(res.Itemsets)
		s.cache.Put(&cacheEntry{
			key: rec.key, body: body, itemsets: res.Itemsets,
			minSupport: rec.minSup, transactions: rec.trans,
		})
		s.addFaults(res.Faults)
	}
	rec.complete(info, body, resultItemsets(res))
}

// resultItemsets guards the itemset slice of a failed run.
func resultItemsets(res *gpapriori.Result) []gpapriori.Itemset {
	if res == nil {
		return nil
	}
	return res.Itemsets
}

// complete marks the record terminal: any itemsets not yet streamed
// ride on the final event together with the terminal job info.
func (r *jobRecord) complete(info gpapriori.ServeJobInfo, body []byte, itemsets []gpapriori.Itemset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var remainder []gpapriori.Itemset
	for _, s := range itemsets {
		if len(s.Items) > r.lastLen {
			remainder = append(remainder, s)
		}
	}
	r.events = append(r.events, gpapriori.ServeGenerationEvent{
		Itemsets: remainder, Final: true, Job: &info,
	})
	r.terminal = true
	r.final = info
	r.resultBody = body
	r.signalLocked()
}

// renderResult produces the resultio-canonical text body — the same
// bytes the offline CLI writes, which is what makes served and offline
// results diffable.
func renderResult(itemsets []gpapriori.Itemset) []byte {
	rs := &dataset.ResultSet{}
	for _, s := range itemsets {
		rs.Add(s.Items, s.Support)
	}
	var buf bytes.Buffer
	if err := resultio.Write(&buf, rs); err != nil {
		// resultio.Write to a bytes.Buffer cannot fail; keep the
		// invariant loud rather than silently serving an empty body.
		panic(fmt.Sprintf("server: rendering result: %v", err))
	}
	return buf.Bytes()
}

// addFaults folds one run's fault stats into the server aggregate.
func (s *Server) addFaults(f *gpapriori.FaultStats) {
	if f == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.Injected += f.Injected
	s.faults.KernelFaults += f.KernelFaults
	s.faults.TransferFaults += f.TransferFaults
	s.faults.Hangs += f.Hangs
	s.faults.Retries += f.Retries
	s.faults.Failovers += f.Failovers
	s.faults.DegradedCandidates += f.DegradedCandidates
	s.faults.RecoverySeconds += f.RecoverySeconds
}

// snapshot returns the record's current job info, terminal flag, and
// the channel that signals the next change.
func (r *jobRecord) snapshot() (gpapriori.ServeJobInfo, bool, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.terminal {
		return r.final, true, r.wake
	}
	info := gpapriori.ServeJobInfo{
		ID: r.id, Dataset: r.dataset, Algorithm: r.algo,
		State: r.mj.State().String(), MinSupport: r.minSup,
		Transactions: r.trans,
	}
	return info, false, r.wake
}

// isTerminal reads the terminal flag alone (drain's snapshot loop).
func (r *jobRecord) isTerminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.terminal
}

// eventsFrom returns the stream events at index i and beyond, plus the
// terminal flag and wake channel.
func (r *jobRecord) eventsFrom(i int) ([]gpapriori.ServeGenerationEvent, bool, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var evs []gpapriori.ServeGenerationEvent
	if i < len(r.events) {
		evs = append(evs, r.events[i:]...)
	}
	return evs, r.terminal, r.wake
}

// ---- handlers ----

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeServeError renders a typed error body.
func writeServeError(w http.ResponseWriter, se *gpapriori.ServeError) {
	writeJSON(w, se.Status, se)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := gpapriori.ServeStats{
		QueueLen:      s.jm.QueueLen(),
		InFlightBytes: s.jm.InFlightBytes(),
		Jobs:          s.jm.Counters(),
		Cache:         s.cache.Stats(),
		Datasets:      s.reg.List(),
	}
	s.mu.Lock()
	st.Draining = s.draining
	st.Jobs.Submitted += s.cachedSubmitted
	st.Jobs.Done += s.cachedDone
	st.Faults = s.faults
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, se := DecodeMineRequest(r.Body)
	if se != nil {
		writeServeError(w, se)
		return
	}
	rec, se := s.submit(*req, "")
	if se != nil {
		writeServeError(w, se)
		return
	}
	info, terminal, _ := rec.snapshot()
	status := http.StatusAccepted
	if terminal {
		// A cache hit is already complete: answer 200, not 202.
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// lookup finds a job record or writes the typed 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusNotFound,
			Code: "unknown_job", Message: fmt.Sprintf("no job %q", id)})
		return nil, false
	}
	return rec, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	wait := 0
	if v := r.URL.Query().Get("wait_sec"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeServeError(w, badRequest("wait_sec must be a non-negative integer"))
			return
		}
		if n > 60 {
			n = 60
		}
		wait = n
	}
	deadline := time.Now().Add(time.Duration(wait) * time.Second)
	for {
		info, terminal, wake := rec.snapshot()
		remain := time.Until(deadline)
		if terminal || wait == 0 || remain <= 0 {
			writeJSON(w, http.StatusOK, info)
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if rec.mj != nil {
		s.jm.Cancel(rec.mj)
	}
	info, _, _ := rec.snapshot()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	for {
		evs, terminal, wake := rec.eventsFrom(i)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			i++
		}
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	rec.mu.Lock()
	terminal, final, body := rec.terminal, rec.final, rec.resultBody
	rec.mu.Unlock()
	if !terminal {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusConflict,
			Code: "conflict", Message: fmt.Sprintf("job %q has not finished", rec.id)})
		return
	}
	if final.State != gpapriori.JobDone.String() {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusConflict,
			Code: "conflict", Message: fmt.Sprintf("job %q ended %s: %s", rec.id, final.State, final.Error)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// ---- drain and restart ----

// journalEntry is one unfinished request in the drain journal.
type journalEntry struct {
	ID      string                     `json:"id"`
	Request gpapriori.ServeMineRequest `json:"request"`
}

// journal is the drain journal file body.
type journal struct {
	Jobs []journalEntry `json:"jobs"`
}

// journalPath is the drain journal location.
func (s *Server) journalPath() string { return filepath.Join(s.stateDir, "pending.json") }

// Drain performs graceful shutdown: stop admitting, journal every
// unfinished request (its last generation checkpoint is already
// durable — a generation is only streamed after its snapshot lands),
// cancel what is running, and wait for the manager and finalizers to
// settle. A restarted server replays the journal and resumes each job
// from its checkpoint to the identical result. ctx bounds the wait;
// expiry abandons the remaining jobs to process exit.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var pending []*jobRecord
	var entries []journalEntry
	for _, rec := range s.jobs {
		if !rec.isTerminal() {
			pending = append(pending, rec)
			entries = append(entries, journalEntry{ID: rec.id, Request: rec.requestForJournal()})
		}
	}
	s.mu.Unlock()

	var journalErr error
	if s.stateDir != "" && len(entries) > 0 {
		journalErr = writeJournal(s.journalPath(), journal{Jobs: entries})
	}
	for _, rec := range pending {
		if rec.mj != nil {
			s.jm.Cancel(rec.mj)
		}
	}
	done := make(chan struct{})
	go func() {
		s.jm.Close()
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return journalErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requestForJournal is the persisted form of the record's request: the
// full config (so the fingerprint — and with it the checkpoint path —
// re-derives identically on replay), with the support threshold pinned
// to the resolved absolute value and the cache re-enabled: if an
// identical request completed meanwhile, the cached answer is the
// result.
func (r *jobRecord) requestForJournal() gpapriori.ServeMineRequest {
	req := r.req
	req.MinSupport = r.minSup
	req.RelativeSupport = 0
	req.NoCache = false
	return req
}

// writeJournal persists the journal atomically (temp + rename), the
// same discipline as checkpoint saves.
func writeJournal(path string, j journal) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// replayJournal resubmits the jobs a previous drain left unfinished.
// Jobs whose dataset is no longer registered become terminal failed
// records, so a client polling the old ID gets an answer instead of a
// 404 that lies about history.
func (s *Server) replayJournal() error {
	if s.stateDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var j journal
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("server: corrupt drain journal %s: %w", s.journalPath(), err)
	}
	for _, e := range j.Jobs {
		s.bumpNextID(e.ID)
		if _, se := s.submit(e.Request, e.ID); se != nil {
			s.failRecord(e, se)
		}
	}
	return os.Remove(s.journalPath())
}

// bumpNextID keeps fresh IDs ahead of every replayed one.
func (s *Server) bumpNextID(id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// failRecord registers a terminal failed record for a journal entry
// that could not be resubmitted.
func (s *Server) failRecord(e journalEntry, se *gpapriori.ServeError) {
	info := gpapriori.ServeJobInfo{
		ID: e.ID, Dataset: e.Request.Dataset, Algorithm: e.Request.Algorithm,
		State: gpapriori.JobFailed.String(),
		Error: fmt.Sprintf("resume after restart: %s", se.Message),
	}
	rec := &jobRecord{
		id: e.ID, dataset: e.Request.Dataset, algo: e.Request.Algorithm,
		wake:     make(chan struct{}),
		events:   []gpapriori.ServeGenerationEvent{{Final: true, Job: &info}},
		terminal: true,
		final:    info,
	}
	s.mu.Lock()
	s.jobs[e.ID] = rec
	s.mu.Unlock()
}
