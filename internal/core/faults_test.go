package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gpapriori/internal/apriori"
	"gpapriori/internal/gen"
	"gpapriori/internal/gpusim"
	"gpapriori/internal/oracle"
	"gpapriori/internal/trie"
)

func TestParseFaultSpec(t *testing.T) {
	got, err := ParseFaultSpec("dev1:kernel-fail@gen3, dev2:dead@gen2,dev0:hang=2.5@gen4,dev3:xfer-fail@gen2,dev4:hang@gen5")
	if err != nil {
		t.Fatal(err)
	}
	want := []DeviceFault{
		{Device: 1, Gen: 3, Kind: gpusim.FaultKernelFail},
		{Device: 2, Gen: 2, Kind: gpusim.FaultDead},
		{Device: 0, Gen: 4, Kind: gpusim.FaultHang, HangSeconds: 2.5},
		{Device: 3, Gen: 2, Kind: gpusim.FaultTransferFail},
		{Device: 4, Gen: 5, Kind: gpusim.FaultHang, HangSeconds: DefaultHangSeconds},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
	if got, err := ParseFaultSpec(""); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"dev1",                   // no kind
		"dev1:kernel-fail",       // no generation
		"1:kernel-fail@gen3",     // missing dev prefix
		"devX:kernel-fail@gen3",  // bad device index
		"dev1:explode@gen3",      // unknown kind
		"dev1:kernel-fail@3",     // missing gen prefix
		"dev1:kernel-fail@genX",  // bad generation
		"dev1:kernel-fail@gen1",  // generation below first device gen
		"dev1:hang=-2@gen3",      // negative hang
		"dev1:hang=abc@gen3",     // unparsable hang
		"dev-1:kernel-fail@gen3", // negative device
		"dev1 kernel-fail@gen3",  // malformed separator
	} {
		if _, err := ParseFaultSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func FuzzParseFaultSpec(f *testing.F) {
	f.Add("dev1:kernel-fail@gen3,dev2:dead@gen2")
	f.Add("dev0:hang=2.5@gen4")
	f.Add("dev0:xfer-fail@gen2")
	f.Add(",,,")
	f.Add("dev:hang=@gen")
	f.Fuzz(func(t *testing.T, spec string) {
		faults, err := ParseFaultSpec(spec)
		if err != nil {
			return
		}
		// Every accepted fault must be well-formed enough to validate
		// against a sufficiently large pool.
		for _, fl := range faults {
			if fl.Gen < 2 || fl.Device < 0 || fl.Kind == gpusim.FaultNone || fl.HangSeconds < 0 {
				t.Fatalf("spec %q parsed to invalid fault %+v", spec, fl)
			}
		}
	})
}

func TestMultiOptionsValidate(t *testing.T) {
	base := MultiOptions{Devices: 2}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MultiOptions{
		{Devices: 0},
		{Devices: 17},
		{Devices: 1, HybridCPUShare: 1},
		{Devices: 1, HybridCPUShare: -0.5},
		{Devices: 1, MaxCPUShare: 1.5},
		{Devices: 1, Retry: RetryPolicy{MaxRetries: -1}},
		{Devices: 1, Retry: RetryPolicy{BackoffSec: -1}},
		{Devices: 1, Retry: RetryPolicy{DeadlineSec: -1}},
		{Devices: 2, Faults: []DeviceFault{{Device: 2, Gen: 3, Kind: gpusim.FaultDead}}},
		{Devices: 2, Faults: []DeviceFault{{Device: 0, Gen: 1, Kind: gpusim.FaultDead}}},
		{Devices: 2, Faults: []DeviceFault{{Device: 0, Gen: 3}}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad option set %d accepted: %+v", i, o)
		}
	}
}

func TestSingleMinerRetriesKernelFault(t *testing.T) {
	db := gen.Random(120, 16, 0.4, 6)
	want := oracle.Mine(db, 20)
	m, err := New(db, Options{
		Faults:    []DeviceFault{{Device: 0, Gen: 2, Kind: gpusim.FaultKernelFail}},
		FaultSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Mine(20, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Fatalf("fault-injected result differs: %v", rep.Result.Diff(want))
	}
	if rep.Faults.KernelFaults != 1 || rep.Faults.Retries != 1 {
		t.Fatalf("FaultStats = %+v", rep.Faults)
	}
	if rep.Faults.RecoverySeconds <= 0 {
		t.Fatal("recovery cost not recorded")
	}
	if rep.Device.Stall <= 0 {
		t.Fatal("fault stall missing from modeled device time")
	}
}

func TestSingleMinerWatchdogKillsHang(t *testing.T) {
	db := gen.Random(120, 16, 0.4, 6)
	want := oracle.Mine(db, 20)
	m, err := New(db, Options{
		Faults: []DeviceFault{{Device: 0, Gen: 2, Kind: gpusim.FaultHang, HangSeconds: 30}},
		Retry:  RetryPolicy{DeadlineSec: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Mine(20, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Fatalf("result differs after watchdog recovery: %v", rep.Result.Diff(want))
	}
	if rep.Faults.Hangs != 1 || rep.Faults.Retries != 1 {
		t.Fatalf("FaultStats = %+v", rep.Faults)
	}
	// The watchdog capped the stall at the deadline, far below the hang.
	if rep.Device.Stall >= 30 || rep.Device.Stall < 0.25 {
		t.Fatalf("stall %v not bounded by the 0.25s deadline", rep.Device.Stall)
	}
}

func TestSingleMinerDeadDeviceFailsRun(t *testing.T) {
	db := gen.Random(80, 12, 0.4, 1)
	m, err := New(db, Options{
		Faults: []DeviceFault{{Device: 0, Gen: 2, Kind: gpusim.FaultDead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Mine(10, apriori.Config{}); !errors.Is(err, gpusim.ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
}

func TestMultiDeadDeviceFailsOver(t *testing.T) {
	db := gen.Random(200, 18, 0.4, 3)
	clean, err := NewMulti(db, MultiOptions{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleanRep, err := clean.Mine(30, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMulti(db, MultiOptions{
		Devices: 2,
		Faults:  []DeviceFault{{Device: 1, Gen: 2, Kind: gpusim.FaultDead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Mine(30, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(cleanRep.Result) {
		t.Fatalf("failover result differs from clean run: %v", rep.Result.Diff(cleanRep.Result))
	}
	if rep.Faults.Failovers < 1 {
		t.Fatalf("no failover recorded: %+v", rep.Faults)
	}
	if !reflect.DeepEqual(rep.Faults.DeadDevices, []int{1}) {
		t.Fatalf("DeadDevices = %v, want [1]", rep.Faults.DeadDevices)
	}
	// The survivor picked up the dead device's share.
	if rep.CandidatesPerDevice[0] != cleanRep.CandidatesPerDevice[0]+cleanRep.CandidatesPerDevice[1] {
		t.Fatalf("surviving device counted %d candidates, want %d",
			rep.CandidatesPerDevice[0],
			cleanRep.CandidatesPerDevice[0]+cleanRep.CandidatesPerDevice[1])
	}
}

func TestMultiAllDevicesDeadDegradesToCPU(t *testing.T) {
	db := gen.Random(150, 14, 0.45, 2)
	want := oracle.Mine(db, 30)
	m, err := NewMulti(db, MultiOptions{
		Devices: 1,
		Faults:  []DeviceFault{{Device: 0, Gen: 2, Kind: gpusim.FaultDead}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Mine(30, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Fatalf("degraded result differs: %v", rep.Result.Diff(want))
	}
	if rep.Faults.DegradedCandidates == 0 {
		t.Fatalf("no degraded candidates recorded: %+v", rep.Faults)
	}
	if !reflect.DeepEqual(rep.Faults.DeadDevices, []int{0}) {
		t.Fatalf("DeadDevices = %v, want [0]", rep.Faults.DeadDevices)
	}
}

func TestMultiTransientFaultsMatchOracle(t *testing.T) {
	db := gen.Random(200, 18, 0.4, 3)
	want := oracle.Mine(db, 30)
	m, err := NewMulti(db, MultiOptions{
		Devices: 2,
		Faults: []DeviceFault{
			{Device: 0, Gen: 2, Kind: gpusim.FaultKernelFail},
			{Device: 1, Gen: 2, Kind: gpusim.FaultTransferFail},
			{Device: 0, Gen: 3, Kind: gpusim.FaultHang, HangSeconds: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Mine(30, apriori.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Result.Equal(want) {
		t.Fatalf("result differs under transient faults: %v", rep.Result.Diff(want))
	}
	f := rep.Faults
	if f.KernelFaults != 1 || f.TransferFaults != 1 || f.Hangs != 1 {
		t.Fatalf("FaultStats = %+v", f)
	}
	if f.Retries != 3 {
		t.Fatalf("retries = %d, want 3 (one per transient fault)", f.Retries)
	}
	if len(f.DeadDevices) != 0 {
		t.Fatalf("transient faults killed devices: %v", f.DeadDevices)
	}
}

func TestFaultDeterminism(t *testing.T) {
	db := gen.Random(200, 18, 0.4, 3)
	run := func() (MultiReport, error) {
		m, err := NewMulti(db, MultiOptions{
			Devices:   3,
			FaultSeed: 99,
			Faults: []DeviceFault{
				{Device: 2, Gen: 2, Kind: gpusim.FaultDead},
				{Device: 0, Gen: 3, Kind: gpusim.FaultKernelFail},
			},
		})
		if err != nil {
			return MultiReport{}, err
		}
		return m.Mine(30, apriori.Config{})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Fatalf("same seed + plan, different FaultStats:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if !a.Result.Equal(b.Result) {
		t.Fatalf("same seed + plan, different results: %v", a.Result.Diff(b.Result))
	}
}

func TestMineContextCancelled(t *testing.T) {
	db := gen.Random(120, 16, 0.4, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	m, err := New(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MineContext(ctx, 20, apriori.Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("single MineContext err = %v, want context.Canceled", err)
	}

	mm, err := NewMulti(db, MultiOptions{Devices: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mm.MineContext(ctx, 20, apriori.Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi MineContext err = %v, want context.Canceled", err)
	}
}

// TestMineContextCancelMidRun cancels during the first counted generation
// and requires the run to stop at the next generation boundary.
func TestMineContextCancelMidRun(t *testing.T) {
	db := gen.Random(200, 18, 0.4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	c := &cancellingCounter{cancel: cancel}
	_, err := apriori.MineContext(ctx, db, 2, c, apriori.Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.counts != 1 {
		t.Fatalf("counted %d generations after cancel, want exactly 1", c.counts)
	}
}

// cancellingCounter cancels its context inside the first Count call and
// marks every candidate frequent, so only the generation-boundary check
// can stop the run.
type cancellingCounter struct {
	cancel context.CancelFunc
	counts int
}

func (c *cancellingCounter) Name() string { return "cancelling" }

func (c *cancellingCounter) Count(_ *trie.Trie, cands []trie.Candidate, _ int) error {
	c.counts++
	c.cancel()
	for _, cand := range cands {
		cand.Node.Support = 1 << 30
	}
	return nil
}
