package checkpoint

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpapriori/internal/apriori"
	"gpapriori/internal/bitset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

// TestMineContextCancelledMidCheckpoint: a run whose context is
// cancelled while a checkpoint save is still in the writer must leave a
// whole checkpoint on disk — the previous one or the new one, never a
// torn file — and the snapshot must resume to the exact oracle result.
func TestMineContextCancelledMidCheckpoint(t *testing.T) {
	db := gen.Random(120, 12, 0.4, 9)
	minSup := 6
	want := oracle.Mine(db, minSup)

	mine := func(ctx context.Context, spec Spec) (gotErr error) {
		var cfg apriori.Config
		if err := Wire(spec, db, minSup, &cfg, nil); err != nil {
			t.Fatal(err)
		}
		_, err := apriori.MineContext(ctx, db, minSup,
			apriori.NewCPUBitset(db, bitset.PopcountHardware), cfg)
		return err
	}

	cases := []struct {
		name string
		// hook is the injected slow writer, invoked with the run's cancel
		// function after the temp file is durable but before the rename.
		hook    func(saves int, cancel context.CancelFunc) error
		wantErr error
	}{
		{
			// The caller gives up while save 2 is mid-flight: the rename
			// still lands (the writer was past the point of no return),
			// and the run stops at the next boundary check.
			name: "cancel-during-slow-save",
			hook: func(saves int, cancel context.CancelFunc) error {
				if saves == 2 {
					cancel()
					time.Sleep(10 * time.Millisecond)
				}
				return nil
			},
			wantErr: context.Canceled,
		},
		{
			// The writer itself dies before the rename: the temp file is
			// abandoned and the previous checkpoint must survive.
			name: "writer-dies-before-rename",
			hook: func(saves int, _ context.CancelFunc) error {
				if saves == 2 {
					return errors.New("writer killed")
				}
				return nil
			},
			wantErr: nil, // matched by substring below
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.ckpt")
			spec := Spec{Path: path, EveryGens: 1}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			saves := 0
			testHookAfterTemp = func() error {
				saves++
				return tc.hook(saves, cancel)
			}
			defer func() { testHookAfterTemp = nil }()

			err := mine(ctx, spec)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
			} else if err == nil || !strings.Contains(err.Error(), "writer killed") {
				t.Fatalf("err = %v, want the injected writer failure", err)
			}
			testHookAfterTemp = nil

			// Whatever survived on disk is a whole checkpoint from a real
			// boundary, never torn.
			snap, err := Load(path)
			if err != nil {
				t.Fatalf("checkpoint torn after interrupted run: %v", err)
			}
			// The first boundary saved is generation 2 (generation 1 is
			// the seed), so save #2 is generation 3: the survivor is one
			// of the two.
			if snap.Gen < 2 || snap.Gen > 3 {
				t.Fatalf("checkpoint gen %d, want 2 or 3", snap.Gen)
			}

			// And it resumes to the exact oracle result.
			resumed := spec
			resumed.Resume = true
			if err := mine(context.Background(), resumed); err != nil {
				t.Fatalf("resume after interruption: %v", err)
			}
			final, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if !final.Frequent.Equal(want) {
				t.Errorf("resumed result differs from oracle:\n%s",
					strings.Join(final.Frequent.Diff(want), "\n"))
			}
		})
	}
}
