package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTidsetSortsAndDedups(t *testing.T) {
	ts := NewTidset([]uint32{5, 1, 3, 1, 5, 2})
	want := Tidset{1, 2, 3, 5}
	if len(ts) != len(want) {
		t.Fatalf("NewTidset = %v, want %v", ts, want)
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("NewTidset = %v, want %v", ts, want)
		}
	}
	if !ts.IsSorted() {
		t.Fatal("NewTidset result not sorted")
	}
}

func TestTidsetIntersect(t *testing.T) {
	a := Tidset{1, 3, 5, 7, 9}
	b := Tidset{3, 4, 5, 6, 7}
	got := a.Intersect(b)
	want := Tidset{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
	if got := a.IntersectCount(b); got != 3 {
		t.Fatalf("IntersectCount = %d, want 3", got)
	}
}

func TestTidsetIntersectDisjoint(t *testing.T) {
	a := Tidset{1, 2}
	b := Tidset{3, 4}
	if got := a.Intersect(b); len(got) != 0 {
		t.Fatalf("Intersect of disjoint sets = %v", got)
	}
	if got := a.IntersectCount(b); got != 0 {
		t.Fatalf("IntersectCount of disjoint sets = %d", got)
	}
}

func TestTidsetIntersectEmpty(t *testing.T) {
	a := Tidset{}
	b := Tidset{1, 2, 3}
	if got := a.Intersect(b); len(got) != 0 {
		t.Fatalf("Intersect with empty = %v", got)
	}
}

func TestTidsetDiff(t *testing.T) {
	a := Tidset{1, 2, 3, 4, 5}
	b := Tidset{2, 4, 6}
	got := a.Diff(b)
	want := Tidset{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Diff = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diff = %v, want %v", got, want)
		}
	}
}

func TestTidsetDiffEmptyOther(t *testing.T) {
	a := Tidset{1, 2, 3}
	got := a.Diff(Tidset{})
	if len(got) != 3 {
		t.Fatalf("Diff with empty = %v, want all of a", got)
	}
}

func TestTidsetContains(t *testing.T) {
	a := Tidset{2, 4, 8, 16}
	for _, id := range []uint32{2, 4, 8, 16} {
		if !a.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []uint32{0, 1, 3, 17} {
		if a.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
}

func TestTidsetBitsetRoundTrip(t *testing.T) {
	a := Tidset{0, 9, 63, 64, 99}
	b := a.ToBitset(100)
	back := FromBitset(b)
	if len(back) != len(a) {
		t.Fatalf("round trip = %v, want %v", back, a)
	}
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("round trip = %v, want %v", back, a)
		}
	}
}

func TestToBitsetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tid out of range")
		}
	}()
	Tidset{100}.ToBitset(100)
}

// Property: tidset merge-join intersection agrees with bitset AND popcount —
// the equivalence GPApriori exploits when swapping layouts.
func TestPropertyTidsetBitsetIntersectionAgree(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const width = 1 << 16
		a := NewTidset(widen(xs))
		b := NewTidset(widen(ys))
		ba := a.ToBitset(width)
		bb := b.ToBitset(width)
		return a.IntersectCount(b) == ba.AndCount(bb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: |A| = |A∩B| + |A\B| (diffset identity used by Eclat-diffset).
func TestPropertyDiffsetIdentity(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := NewTidset(widen(xs))
		b := NewTidset(widen(ys))
		return len(a) == a.IntersectCount(b)+len(a.Diff(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection is commutative and a subset of both inputs.
func TestPropertyIntersectCommutativeSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a := randomTidset(rng, 200, 1000)
		b := randomTidset(rng, 200, 1000)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if len(ab) != len(ba) {
			t.Fatalf("intersection not commutative: %d vs %d", len(ab), len(ba))
		}
		for i := range ab {
			if ab[i] != ba[i] {
				t.Fatal("intersection not commutative")
			}
			if !a.Contains(ab[i]) || !b.Contains(ab[i]) {
				t.Fatal("intersection element missing from an input")
			}
		}
	}
}

func widen(xs []uint16) []uint32 {
	out := make([]uint32, len(xs))
	for i, v := range xs {
		out[i] = uint32(v)
	}
	return out
}

func randomTidset(rng *rand.Rand, maxLen, universe int) Tidset {
	n := rng.Intn(maxLen)
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(rng.Intn(universe))
	}
	return NewTidset(ids)
}
