// Package core implements GPApriori itself — the paper's contribution:
// level-wise Apriori with trie-based candidate generation on the host and
// complete-intersection support counting on the (simulated) GPU.
//
// The workflow follows Section IV:
//
//  1. Transpose the database into static bitsets and upload only the
//     first-generation vectors to device memory (one H2D transfer).
//  2. Each generation: generate candidates on the host trie, ship the
//     candidate item lists to the device, launch the support-counting
//     kernel (one block per candidate), copy the support array back, and
//     prune the trie.
//  3. Repeat until no generation survives.
//
// Timing is split the way the substitution requires (DESIGN.md §2): host
// candidate generation is measured wall-clock; everything device-side is
// modeled by gpusim's calibrated timing model. Report carries both.
package core

import (
	"fmt"
	"time"

	"gpapriori/internal/apriori"
	"gpapriori/internal/dataset"
	"gpapriori/internal/gpusim"
	"gpapriori/internal/kernels"
	"gpapriori/internal/trie"
	"gpapriori/internal/vertical"
)

// Options configures a GPApriori miner.
type Options struct {
	// Device is the simulated GPU configuration. Zero value = TeslaT10().
	Device gpusim.Config
	// Kernel carries the Section IV.3 tuning knobs (block size, candidate
	// preloading, unrolling). Zero value = kernels.DefaultOptions().
	Kernel kernels.Options
	// DeviceMemWords overrides the device memory size in 32-bit words
	// (0 = sized automatically from the dataset with scratch headroom).
	DeviceMemWords int
}

// Miner is a GPApriori instance bound to one database: the vertical
// bitsets live in device memory across mining runs, as in the paper.
type Miner struct {
	db  *dataset.DB
	dev *gpusim.Device
	ddb *kernels.DeviceDB
	opt kernels.Options
}

// Report describes one mining run.
type Report struct {
	Result *dataset.ResultSet
	// HostSeconds is measured wall-clock spent in host-side work
	// (candidate trie generation and pruning).
	HostSeconds float64
	// Device is the modeled device time of the run (kernels, launches,
	// transfers) from the gpusim timing model.
	Device gpusim.TimeBreakdown
	// DeviceStats are the raw device event counts of the run.
	DeviceStats gpusim.Stats
	// Generations is the number of candidate generations counted on the
	// device (itemset lengths 2..Generations+1).
	Generations int
	// Candidates is the total number of candidates whose support the
	// device computed.
	Candidates int
}

// TotalSeconds is the modeled end-to-end time: measured host work plus
// modeled device work.
func (r Report) TotalSeconds() float64 { return r.HostSeconds + r.Device.Total() }

// New builds a Miner over db: it transposes the database, creates the
// simulated device, and uploads the first-generation bitsets.
func New(db *dataset.DB, opt Options) (*Miner, error) {
	if db.Len() == 0 || db.NumItems() == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	cfg := opt.Device
	if cfg.SMs == 0 {
		cfg = gpusim.TeslaT10()
	}
	kopt := opt.Kernel
	if kopt.BlockSize == 0 {
		kopt = kernels.DefaultOptions()
	}

	v := vertical.BuildBitsets(db)
	vecWords := len(v.Vectors) * v.WordsPerVector() * 2 // 32-bit words
	memWords := opt.DeviceMemWords
	if memWords == 0 {
		// Vectors plus scratch headroom for the largest candidate batch.
		scratch := vecWords
		if scratch < 1<<20 {
			scratch = 1 << 20
		}
		if scratch > 1<<25 {
			scratch = 1 << 25
		}
		memWords = vecWords + scratch + 1024
	}
	dev := gpusim.NewDevice(cfg, memWords)
	ddb, err := kernels.Upload(dev, v)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Miner{db: db, dev: dev, ddb: ddb, opt: kopt}, nil
}

// Device exposes the simulated device (for stats inspection in tools).
func (m *Miner) Device() *gpusim.Device { return m.dev }

// counter adapts the device kernel to the apriori.Counter interface,
// chunking generations that exceed free device memory into multiple
// launches and accounting the time spent simulating (to be excluded from
// host-side wall-clock).
type counter struct {
	m           *Miner
	simWall     time.Duration
	generations int
	candidates  int
}

// Name implements apriori.Counter.
func (c *counter) Name() string { return "GPApriori(gpusim)" }

// Count implements apriori.Counter.
func (c *counter) Count(_ *trie.Trie, cands []trie.Candidate, k int) error {
	start := time.Now()
	defer func() { c.simWall += time.Since(start) }()
	c.generations++
	c.candidates += len(cands)

	// A batch of n candidates needs n·k words (candidate ids) + n words
	// (supports) + two buffers' alignment slack.
	free := c.m.dev.MemWords() - c.m.dev.AllocatedWords()
	maxBatch := (free - 32) / (k + 1)
	if maxBatch < 1 {
		return fmt.Errorf("core: device out of memory for generation %d (%d free words)", k, free)
	}
	items := make([][]dataset.Item, 0, len(cands))
	for lo := 0; lo < len(cands); lo += maxBatch {
		c.m.dev.TagNextLaunch(fmt.Sprintf("support-count gen %d", k))
		hi := lo + maxBatch
		if hi > len(cands) {
			hi = len(cands)
		}
		items = items[:0]
		for _, cand := range cands[lo:hi] {
			items = append(items, cand.Items)
		}
		sups, err := c.m.ddb.SupportCounts(items, c.m.opt)
		if err != nil {
			return err
		}
		for i, cand := range cands[lo:hi] {
			cand.Node.Support = sups[i]
		}
	}
	return nil
}

// Mine runs GPApriori at the given absolute minimum support.
func (m *Miner) Mine(minSupport int, cfg apriori.Config) (Report, error) {
	m.dev.ResetStats()
	c := &counter{m: m}
	t0 := time.Now()
	rs, err := apriori.Mine(m.db, minSupport, c, cfg)
	if err != nil {
		return Report{}, err
	}
	wall := time.Since(t0)
	host := wall - c.simWall
	if host < 0 {
		host = 0
	}
	stats := m.dev.Stats()
	return Report{
		Result:      rs,
		HostSeconds: host.Seconds(),
		Device:      m.dev.Config().Model(stats),
		DeviceStats: stats,
		Generations: c.generations,
		Candidates:  c.candidates,
	}, nil
}

// MineRelative is Mine with a relative support threshold in (0,1].
func (m *Miner) MineRelative(rel float64, cfg apriori.Config) (Report, error) {
	return m.Mine(m.db.AbsoluteSupport(rel), cfg)
}
