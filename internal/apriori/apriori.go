// Package apriori implements the level-wise Apriori miner and the CPU
// support-counting strategies the paper benchmarks against (Table 1):
//
//   - CPUBitset — "CPU_TEST": complete intersection over static bitsets,
//     single-threaded; the exact CPU equivalent of the GPU kernel.
//   - Borgelt — vertical tidset layout with per-generation tidset reuse
//     (each candidate's tidset is its prefix's tidset ∩ the new item's),
//     the strategy of Borgelt's FIMI'03 Apriori.
//   - Bodon — horizontal database walked through the candidate trie
//     (Bodon's OSDM'05 trie Apriori).
//   - Goethals — horizontal candidate-list counting following Agrawal's
//     original algorithm; simple, and very slow on dense data, which is
//     why the paper plots it only on T40I10D100K.
//
// All strategies share one level-wise driver (Mine) built on the candidate
// trie, so they produce identical result sets and differ only in how a
// generation's supports are counted.
package apriori

import (
	"context"
	"fmt"

	"gpapriori/internal/dataset"
	"gpapriori/internal/trie"
)

// Counter counts the supports of one generation of candidates, writing
// each candidate's support into its trie node.
type Counter interface {
	// Count processes candidates of length k (all the same length). The
	// trie is the full candidate structure, for strategies (Bodon) that
	// count by walking transactions through it.
	Count(t *trie.Trie, cands []trie.Candidate, k int) error
	// Name identifies the strategy in reports.
	Name() string
}

// Config bounds a mining run.
type Config struct {
	// MaxLen stops the level-wise loop once itemsets of this size have
	// been counted (0 = unbounded). Benchmarks use it to hold generation
	// depth constant across strategies.
	MaxLen int
	// MaxCandidates aborts the run if one generation exceeds this many
	// candidates (0 = unbounded) — a guard against pattern explosion at
	// too-low thresholds.
	MaxCandidates int

	// Checkpoint, when non-nil, is invoked at generation boundaries —
	// after generation gen (the itemset length just counted) has been
	// counted and pruned — with every frequent itemset found so far.
	// Apriori's only durable state at a boundary is exactly that set, so
	// the callback's argument is a complete resume point. A checkpoint
	// error aborts the run: continuing would silently mine without the
	// durability the caller asked for.
	Checkpoint func(gen int, frequent *dataset.ResultSet) error
	// CheckpointEvery calls Checkpoint every N counted generations
	// (≤1 = every generation). The final boundary is always
	// checkpointed so a completed run's file holds the full result.
	CheckpointEvery int
	// Resume fast-forwards the run past already-counted generations: the
	// candidate trie is rebuilt from Resume.Frequent and the level-wise
	// loop continues at generation Resume.Gen+1. Because candidate
	// generation is a deterministic function of the frequent sets, a
	// resumed run produces results bit-identical to an uninterrupted one.
	Resume *Resume
}

// Resume is a generation-boundary resume point, typically recovered from
// an internal/checkpoint snapshot.
type Resume struct {
	// Gen is the largest itemset length already fully counted (≥1).
	Gen int
	// Frequent holds every frequent itemset of length ≤ Gen with its
	// support.
	Frequent *dataset.ResultSet
}

// Mine runs level-wise Apriori over db at the given absolute minimum
// support using the supplied counting strategy, returning every frequent
// itemset with its support.
func Mine(db *dataset.DB, minSupport int, c Counter, cfg Config) (*dataset.ResultSet, error) {
	return MineContext(context.Background(), db, minSupport, c, cfg)
}

// MineContext is Mine with cancellation: ctx is checked at every
// generation boundary, so a cancelled run returns ctx.Err() before
// counting another generation.
func MineContext(ctx context.Context, db *dataset.DB, minSupport int, c Counter, cfg Config) (*dataset.ResultSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("apriori: minimum support %d must be ≥1", minSupport)
	}
	if a, ok := c.(MinSupportAware); ok {
		a.SetMinSupport(minSupport)
	}
	t := trie.New()
	start := 1
	if cfg.Resume != nil {
		var err error
		if start, err = seedFromResume(t, cfg.Resume, minSupport); err != nil {
			return nil, err
		}
	} else {
		t.SeedFrequentItems(db.ItemSupports(), minSupport)
	}
	every := cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	counted, lastSaved, lastGen := 0, 0, start
	for depth := start; ; depth++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.MaxLen > 0 && depth >= cfg.MaxLen {
			break
		}
		cands := t.GenerateNext(depth, minSupport)
		if len(cands) == 0 {
			break
		}
		if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
			return nil, fmt.Errorf("apriori: generation %d has %d candidates (limit %d)",
				depth+1, len(cands), cfg.MaxCandidates)
		}
		if err := c.Count(t, cands, depth+1); err != nil {
			return nil, fmt.Errorf("apriori: counting generation %d: %w", depth+1, err)
		}
		t.PruneInfrequent(depth+1, minSupport)
		lastGen = depth + 1
		counted++
		if cfg.Checkpoint != nil && counted%every == 0 {
			if err := cfg.Checkpoint(lastGen, t.Frequent(minSupport)); err != nil {
				return nil, fmt.Errorf("apriori: checkpoint at generation %d: %w", lastGen, err)
			}
			lastSaved = lastGen
		}
	}
	rs := t.Frequent(minSupport)
	// Final boundary: persist the completed state even when the loop
	// ended between EveryGens intervals, so a rerun fast-forwards past
	// the whole run instead of redoing the tail generations.
	if cfg.Checkpoint != nil && lastSaved != lastGen {
		if err := cfg.Checkpoint(lastGen, rs); err != nil {
			return nil, fmt.Errorf("apriori: final checkpoint at generation %d: %w", lastGen, err)
		}
	}
	return rs, nil
}

// seedFromResume rebuilds the candidate trie from a resume point and
// returns the loop depth to continue from. Every frequent itemset is
// re-inserted with its support; downward closure guarantees each prefix
// is itself in the set, so the rebuilt trie is node-for-node the trie an
// uninterrupted run would hold after pruning generation r.Gen.
func seedFromResume(t *trie.Trie, r *Resume, minSupport int) (int, error) {
	if r.Gen < 1 {
		return 0, fmt.Errorf("apriori: resume generation %d must be ≥1", r.Gen)
	}
	if r.Frequent == nil {
		return 0, fmt.Errorf("apriori: resume point has no frequent sets")
	}
	for _, s := range r.Frequent.Sets {
		if s.Support < minSupport {
			return 0, fmt.Errorf("apriori: resume itemset %v has support %d below threshold %d (checkpoint from a different run?)",
				s.Items, s.Support, minSupport)
		}
		if len(s.Items) > r.Gen {
			return 0, fmt.Errorf("apriori: resume itemset %v is longer than resume generation %d",
				s.Items, r.Gen)
		}
		t.Insert(s.Items).Support = s.Support
	}
	return r.Gen, nil
}

// MineRelative is Mine with a relative support threshold in (0,1].
func MineRelative(db *dataset.DB, relSupport float64, c Counter, cfg Config) (*dataset.ResultSet, error) {
	return Mine(db, db.AbsoluteSupport(relSupport), c, cfg)
}
