// Non-hit case: the import path ends in "other", outside both the
// determinism and maporder package sets.
package other

func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
