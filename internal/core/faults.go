// Fault tolerance for the mining paths: a declarative per-device fault
// schedule, a watchdog + retry/backoff policy applied to every kernel
// launch and transfer, and the accounting block (FaultStats) that makes
// recovery observable in reports. The invariant the machinery maintains
// is clean-run equivalence: a fault-injected run must produce exactly the
// result set of the fault-free run, because failed operations leave no
// partial state and re-executed batches are deterministic.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"gpapriori/internal/gpusim"
)

// DeviceFault schedules one injected fault: device Device suffers Kind at
// the start of generation Gen (the itemset length being counted; the
// first device generation is 2).
type DeviceFault struct {
	Device int
	Gen    int
	Kind   gpusim.FaultKind
	// HangSeconds is the modeled stall of a FaultHang (default 30s, far
	// past any sane watchdog deadline).
	HangSeconds float64
}

// DefaultHangSeconds is the modeled hang length when a spec does not give
// one — long enough that any configured watchdog fires first.
const DefaultHangSeconds = 30.0

func (f DeviceFault) validate(devices int) error {
	if f.Device < 0 || f.Device >= devices {
		return fmt.Errorf("core: fault device %d out of range [0,%d)", f.Device, devices)
	}
	if f.Gen < 2 {
		return fmt.Errorf("core: fault generation %d must be ≥2 (the first device generation)", f.Gen)
	}
	if f.Kind == gpusim.FaultNone {
		return fmt.Errorf("core: fault on device %d has no kind", f.Device)
	}
	if f.HangSeconds < 0 {
		return fmt.Errorf("core: negative hang %v on device %d", f.HangSeconds, f.Device)
	}
	return nil
}

// ParseFaultSpec parses a comma-separated fault plan of the form
//
//	dev<N>:<kind>@gen<G>
//
// where <kind> is kernel-fail, xfer-fail, dead, hang, or hang=<seconds>.
// Example: "dev1:kernel-fail@gen3,dev2:dead@gen2,dev0:hang=2.5@gen4".
func ParseFaultSpec(spec string) ([]DeviceFault, error) {
	var out []DeviceFault
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		devPart, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return nil, fmt.Errorf("core: fault %q: want dev<N>:<kind>@gen<G>", entry)
		}
		kindPart, genPart, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("core: fault %q: missing @gen<G>", entry)
		}
		numStr, hasDev := strings.CutPrefix(devPart, "dev")
		if !hasDev {
			return nil, fmt.Errorf("core: fault %q: device must be dev<N>", entry)
		}
		dev, err := strconv.Atoi(numStr)
		if err != nil || dev < 0 {
			return nil, fmt.Errorf("core: fault %q: bad device index %q", entry, numStr)
		}
		genStr, hasGen := strings.CutPrefix(genPart, "gen")
		if !hasGen {
			return nil, fmt.Errorf("core: fault %q: generation must be gen<G>", entry)
		}
		gen, err := strconv.Atoi(genStr)
		if err != nil || gen < 2 {
			return nil, fmt.Errorf("core: fault %q: generation %q must be an integer ≥2", entry, genStr)
		}
		f := DeviceFault{Device: dev, Gen: gen}
		switch {
		case kindPart == "kernel-fail":
			f.Kind = gpusim.FaultKernelFail
		case kindPart == "xfer-fail":
			f.Kind = gpusim.FaultTransferFail
		case kindPart == "dead":
			f.Kind = gpusim.FaultDead
		case kindPart == "hang" || strings.HasPrefix(kindPart, "hang="):
			f.Kind = gpusim.FaultHang
			f.HangSeconds = DefaultHangSeconds
			if _, secStr, ok := strings.Cut(kindPart, "="); ok {
				sec, err := strconv.ParseFloat(secStr, 64)
				if err != nil || sec <= 0 {
					return nil, fmt.Errorf("core: fault %q: bad hang seconds %q", entry, secStr)
				}
				f.HangSeconds = sec
			}
		default:
			return nil, fmt.Errorf("core: fault %q: unknown kind %q (want kernel-fail, xfer-fail, hang[=sec], dead)", entry, kindPart)
		}
		out = append(out, f)
	}
	return out, nil
}

// RetryPolicy bounds fault recovery: every kernel launch gets a modeled
// watchdog deadline, and a failed batch is retried with exponential
// backoff up to a budget before its device is declared lost.
type RetryPolicy struct {
	// MaxRetries is the retry budget per batch (default 3).
	MaxRetries int
	// BackoffSec is the initial modeled backoff, doubled per retry
	// (default 1ms).
	BackoffSec float64
	// DeadlineSec is the modeled watchdog deadline per kernel launch
	// (default 1s). A kernel hanging past it is killed and retried.
	DeadlineSec float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BackoffSec == 0 {
		p.BackoffSec = 1e-3
	}
	if p.DeadlineSec == 0 {
		p.DeadlineSec = 1.0
	}
	return p
}

func (p RetryPolicy) validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("core: negative retry budget %d", p.MaxRetries)
	}
	if p.BackoffSec < 0 {
		return fmt.Errorf("core: negative retry backoff %v", p.BackoffSec)
	}
	if p.DeadlineSec < 0 {
		return fmt.Errorf("core: negative watchdog deadline %v", p.DeadlineSec)
	}
	return nil
}

// FaultStats makes robustness observable: everything the fault machinery
// injected, absorbed, and paid for during one mining run.
type FaultStats struct {
	Injected       int // faults fired across all devices
	KernelFaults   int // failed kernel launches
	TransferFaults int // aborted transfers
	Hangs          int // hung kernels (watchdog-killed or late)
	Retries        int // batch retries performed
	Failovers      int // batches re-routed off a lost device
	// DegradedCandidates counts candidates that fell back to the host CPU
	// because no device survived to count them.
	DegradedCandidates int
	// RecoverySeconds is the modeled time lost to faults: stalls of hung
	// and failed operations plus retry backoff.
	RecoverySeconds float64
	// DeadDevices lists devices permanently lost during the run.
	DeadDevices []int
}

// Any reports whether any fault activity occurred.
func (f FaultStats) Any() bool {
	return f.Injected > 0 || f.Retries > 0 || f.Failovers > 0 || f.DegradedCandidates > 0
}

func (f FaultStats) String() string {
	return fmt.Sprintf("injected=%d (kernel=%d xfer=%d hang=%d) retries=%d failovers=%d degraded=%d recovery=%.4gs dead=%v",
		f.Injected, f.KernelFaults, f.TransferFaults, f.Hangs,
		f.Retries, f.Failovers, f.DegradedCandidates, f.RecoverySeconds, f.DeadDevices)
}

// faultSchedule indexes scheduled faults by generation.
type faultSchedule map[int][]DeviceFault

func buildSchedule(faults []DeviceFault) faultSchedule {
	if len(faults) == 0 {
		return nil
	}
	s := make(faultSchedule)
	for _, f := range faults {
		s[f.Gen] = append(s[f.Gen], f)
	}
	return s
}

// arm fires generation k's scheduled faults into the device injectors.
func (s faultSchedule) arm(devs []*gpusim.Device, k int) {
	for _, f := range s[k] {
		if in := devs[f.Device].Faults(); in != nil {
			in.Arm(gpusim.FaultEvent{Kind: f.Kind, HangSeconds: f.HangSeconds})
		}
	}
}

// faultTracker accumulates the run-level fault accounting shared by the
// single- and multi-device counters.
type faultTracker struct {
	policy RetryPolicy
	stats  FaultStats
}

// countBatch runs count under the retry policy. It returns the modeled
// backoff seconds spent (to be charged to the batch's device time) and an
// error when the device is lost or the retry budget is exhausted —
// either way the device should not be used again this run.
func (ft *faultTracker) countBatch(count func() error) (float64, error) {
	backoff := ft.policy.BackoffSec
	extra := 0.0
	for attempt := 0; ; attempt++ {
		err := count()
		if err == nil {
			return extra, nil
		}
		if errors.Is(err, gpusim.ErrDeviceLost) {
			return extra, err
		}
		if attempt >= ft.policy.MaxRetries {
			return extra, fmt.Errorf("core: retry budget (%d) exhausted: %w", ft.policy.MaxRetries, err)
		}
		ft.stats.Retries++
		ft.stats.RecoverySeconds += backoff
		extra += backoff
		backoff *= 2
	}
}

// finalize folds the device injector records into the tracker's stats.
// alive[i]==false marks device i as removed from rotation by the run.
func (ft *faultTracker) finalize(devs []*gpusim.Device, alive []bool) FaultStats {
	s := ft.stats
	for i, d := range devs {
		in := d.Faults()
		if in == nil {
			continue
		}
		rec := in.Record()
		s.Injected += rec.Injected
		s.KernelFaults += rec.KernelFaults
		s.TransferFaults += rec.TransferFaults
		s.Hangs += rec.Hangs
		s.RecoverySeconds += rec.StallSeconds
		if rec.Dead && alive == nil {
			s.DeadDevices = append(s.DeadDevices, i)
		}
	}
	for i, a := range alive {
		if !a {
			s.DeadDevices = append(s.DeadDevices, i)
		}
	}
	return s
}
