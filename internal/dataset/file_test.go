package dataset

import (
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadWriteFilePlain(t *testing.T) {
	db := New([][]Item{{1, 2}, {3}})
	path := filepath.Join(t.TempDir(), "db.dat")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 || back.NumItems() != 4 {
		t.Fatalf("round trip shape: %d trans, %d items", back.Len(), back.NumItems())
	}
}

func TestReadWriteFileGzip(t *testing.T) {
	db := New([][]Item{{1, 2, 3}, {2, 3}, {9}})
	path := filepath.Join(t.TempDir(), "db.dat.gz")
	if err := db.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("WriteFile did not gzip a .gz path")
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatalf("gzip round trip lost transactions: %d vs %d", back.Len(), db.Len())
	}
}

func TestReadFileSniffsMisnamedGzip(t *testing.T) {
	// Gzip content without the .gz suffix must still load via magic-byte
	// sniffing.
	path := filepath.Join(t.TempDir(), "sneaky.dat")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte("5 6 7\n8\n")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("sniffed gzip read %d transactions, want 2", db.Len())
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.dat")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Corrupt gzip with .gz suffix.
	path := filepath.Join(t.TempDir(), "bad.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

func TestReadNamedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baskets.txt")
	if err := os.WriteFile(path, []byte("tea scone\ntea\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dict := NewDictionary()
	db, err := ReadNamedFile(path, dict)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || dict.Len() != 2 {
		t.Fatalf("named file read: %d trans, %d names", db.Len(), dict.Len())
	}
}

func TestReadFileEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.dat")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 {
		t.Fatalf("empty file produced %d transactions", db.Len())
	}
}

// TestReadFileBadRowTyped: a malformed row in a .dat file surfaces as a
// typed RowError carrying the line number, wrapped with the path.
func TestReadFileBadRowTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dat")
	if err := os.WriteFile(path, []byte("1 2\n3 x 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil {
		t.Fatal("malformed row accepted")
	}
	if !errors.Is(err, ErrBadRow) {
		t.Errorf("error %v does not match ErrBadRow", err)
	}
	var re *RowError
	if !errors.As(err, &re) || re.Row != 2 {
		t.Errorf("error %v should be a RowError for line 2", err)
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), path) {
		t.Errorf("error %q should name the path and line 2", err)
	}
}

// TestReadFileRejectsHugeItemID: one stray huge id must not silently
// allocate a multi-million-item dictionary width.
func TestReadFileRejectsHugeItemID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "huge.dat")
	if err := os.WriteFile(path, []byte("1 2\n3 4294967295\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFile(path)
	if err == nil || !errors.Is(err, ErrBadRow) || !strings.Contains(err.Error(), "MaxItemID") {
		t.Errorf("want a MaxItemID RowError, got %v", err)
	}
}

// TestDBValidate covers the invariants on hand-assembled databases.
func TestDBValidate(t *testing.T) {
	if err := New([][]Item{{1, 2}, {0, 3}}).Validate(); err != nil {
		t.Errorf("valid db rejected: %v", err)
	}
	cases := []struct {
		db   *DB
		want string
	}{
		{&DB{trans: []Transaction{{0, 1}, {}}, nItem: 2}, "empty transaction"},
		{&DB{trans: []Transaction{{2, 1}}, nItem: 3}, "ascending"},
		{&DB{trans: []Transaction{{0}, {7}}, nItem: 3}, "outside dictionary width"},
	}
	for _, c := range cases {
		err := c.db.Validate()
		if err == nil || !errors.Is(err, ErrBadRow) || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want RowError containing %q, got %v", c.want, err)
		}
		if !strings.Contains(err.Error(), "line 2") && !strings.Contains(err.Error(), "line 1") {
			t.Errorf("error %q should carry a row number", err)
		}
	}
}

// TestValidateNamed: item ids must resolve in the dictionary they are
// paired with.
func TestValidateNamed(t *testing.T) {
	dict := NewDictionary()
	db, err := ReadNamed(strings.NewReader("bread milk\neggs\n"), dict)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ValidateNamed(dict); err != nil {
		t.Errorf("in-sync pairing rejected: %v", err)
	}
	stale := NewDictionary()
	stale.Intern("bread")
	err = db.ValidateNamed(stale)
	if err == nil || !errors.Is(err, ErrBadRow) || !strings.Contains(err.Error(), "dictionary") {
		t.Errorf("out-of-sync dictionary accepted: %v", err)
	}
}
