// Package server is the gpaserve daemon: a long-lived mining service
// over the gpapriori library.
//
// The server owns four pieces and wires them together:
//
//   - a dataset Registry (registry.go): databases loaded once, mined
//     many times;
//   - the admission-controlled JobManager from the public API: every
//     mining request flows through the same queue/budget/shedding
//     machinery as batch jobs;
//   - a ResultCache (cache.go) keyed by the checkpoint fingerprint of
//     (database, support, maxlen) — sound because of clean-run
//     equivalence;
//   - an HTTP surface speaking the wire types of the root package's
//     serve.go: submit, long-poll status, per-generation NDJSON
//     streaming, cancel, /healthz, /statsz.
//
// Durability follows the checkpoint subsystem: level-wise jobs
// checkpoint into StateDir at every generation boundary, a streamed
// generation is only announced after its snapshot is durable, and
// Drain journals unfinished requests so a restarted daemon resumes
// them from their last checkpoint to the identical result.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"gpapriori"
	"gpapriori/internal/dataset"
	"gpapriori/internal/fsfault"
	"gpapriori/internal/jobs"
	"gpapriori/internal/peer"
	"gpapriori/internal/resultio"
)

// Config configures a Server.
type Config struct {
	// Registry holds the served datasets. Required; datasets cannot be
	// added after New.
	Registry *Registry
	// Jobs configures the admission controller every request runs under.
	Jobs gpapriori.JobManagerConfig
	// CacheBudgetBytes bounds the result cache (0 disables caching).
	CacheBudgetBytes int64
	// StateDir, when set, holds per-job checkpoints and the drain
	// journal. Empty disables durability: jobs neither checkpoint nor
	// survive a restart.
	StateDir string
	// Overload tunes the HTTP layer's overload defenses (zero value =
	// production defaults; see OverloadConfig).
	Overload OverloadConfig
	// Cluster, when its Peers list is non-empty, makes this daemon a
	// member of a multi-node cluster (cluster.go): datasets placed by
	// consistent hashing, remote-owned submissions forwarded, peer
	// caches consulted before recomputing. The zero value is a plain
	// single-node daemon.
	Cluster peer.Config
	// Log receives operational reports — degraded jobs, quarantined
	// journals, drain loss reports. Nil discards them.
	Log io.Writer
}

// Server is the daemon core: everything but the listener.
type Server struct {
	reg      *Registry
	jm       *gpapriori.JobManager
	cache    *ResultCache
	stateDir string
	log      io.Writer
	mux      *http.ServeMux
	over     OverloadConfig
	// baseCtx is the server lifetime: forwarding goroutines and the
	// peer prober derive from it, not from any request.
	baseCtx context.Context
	// cluster is the multi-node wiring (nil on a single-node daemon).
	cluster *clusterState
	// drainCh is closed when Drain begins, releasing held long-polls so
	// shutdown never waits out a wait_sec window.
	drainCh chan struct{}

	mu       sync.Mutex
	draining bool
	// overCounts tallies tripped transport defenses for /statsz.
	overCounts struct {
		StreamEvictions     int64
		BodyLimitRejections int64
		HandlerTimeouts     int64
	}
	jobs map[string]*jobRecord
	// idem maps client idempotency keys to job ids: a retried submit
	// with a known key returns the original job, never a second
	// enqueue. Sound because the fingerprint cache already proves two
	// identical requests compute identical results.
	idem   map[string]string
	nextID int64
	// cachedSubmitted/cachedDone count cache-answered jobs, which never
	// reach the JobManager but still belong in /statsz's lifecycle view.
	cachedSubmitted int64
	cachedDone      int64
	// faults aggregates injected-fault activity across completed runs.
	faults gpapriori.FaultStats
	// durability is the disk-resilience accounting served by /statsz.
	durability gpapriori.ServeDurabilityStats
	// wg tracks finalizer goroutines so Drain can wait them out.
	wg sync.WaitGroup
}

// logf writes one operational report line.
func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(s.log, "gpaserve: "+format+"\n", args...)
}

// jobRecord is the server-side state of one submitted job: the stream
// event log, the terminal snapshot, and the wake channel stream and
// long-poll readers block on.
type jobRecord struct {
	id      string
	dataset string
	algo    string
	minSup  int
	trans   int
	key     uint64
	// req is the submitted request, kept whole for the drain journal.
	req gpapriori.ServeMineRequest
	// idemKey is the client's idempotency key ("" = none), persisted in
	// the drain journal so dedup survives a restart.
	idemKey string
	mj      *gpapriori.MiningJob // nil for cache-answered records

	mu sync.Mutex
	// degraded is sticky: a checkpoint save failed, the job mines on
	// without a crash-safety net.
	degraded bool
	// requeued marks a drain-canceled job that made it into the
	// journal: its terminal event tells clients to reconnect, not to
	// report the cancellation.
	requeued bool
	// events is append-only; readers index into it.
	events []gpapriori.ServeGenerationEvent
	// lastLen is the largest itemset length already streamed.
	lastLen  int
	terminal bool
	final    gpapriori.ServeJobInfo
	// resultBody is the resultio-canonical rendering of a done job.
	resultBody []byte
	// wake is closed (and replaced) whenever events or terminal change.
	wake chan struct{}

	// Forwarded records (cluster.go) have no MiningJob; their progress
	// comes from relaying an owner's stream. fwdCancel (immutable after
	// creation) stops the forwarding goroutine; fwdState mirrors the
	// remote lifecycle state; forwardedTo names the owner in use.
	fwdCancel   context.CancelFunc
	fwdState    string
	forwardedTo string
}

// New builds a Server, replaying any drain journal in StateDir so jobs
// interrupted by a previous shutdown resume from their checkpoints.
func New(cfg Config) (*Server, error) {
	return NewContext(context.Background(), cfg)
}

// NewContext is New bound to a lifetime: ctx cancellation stops the
// cluster prober and any forwarding goroutines (Drain does too).
func NewContext(ctx context.Context, cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	if err := cfg.Overload.Validate(); err != nil {
		return nil, err
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: state dir: %w", err)
		}
	}
	jm, err := gpapriori.NewJobManager(cfg.Jobs)
	if err != nil {
		return nil, err
	}
	logw := cfg.Log
	if logw == nil {
		logw = io.Discard
	}
	s := &Server{
		reg:      cfg.Registry,
		jm:       jm,
		cache:    NewResultCache(cfg.CacheBudgetBytes),
		stateDir: cfg.StateDir,
		log:      logw,
		over:     cfg.Overload.withDefaults(),
		baseCtx:  ctx,
		drainCh:  make(chan struct{}),
		jobs:     map[string]*jobRecord{},
		idem:     map[string]string{},
	}
	if cfg.Cluster.Enabled() {
		cluster, err := newCluster(cfg.Cluster, cfg.Registry)
		if err != nil {
			jm.Close()
			return nil, err
		}
		s.cluster = cluster
	}
	// Long-poll (job get) and streaming handlers hold connections open
	// by design and run unwrapped; everything else gets a deadline.
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.withTimeout(s.handleHealthz))
	s.mux.HandleFunc("GET /statsz", s.withTimeout(s.handleStatsz))
	s.mux.HandleFunc("GET /v1/datasets", s.withTimeout(s.handleDatasets))
	s.mux.HandleFunc("POST /v1/jobs", s.withTimeout(s.handleSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.withTimeout(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.withTimeout(s.handleResult))
	if s.cluster != nil {
		s.mux.HandleFunc("GET /v1/cache/{key}", s.withTimeout(s.handleCacheGet))
	}
	if err := s.replayJournal(); err != nil {
		jm.Close()
		return nil, err
	}
	if s.cluster != nil {
		// Started after replay so a replayed forward's first resolve
		// sees the boot-time "everyone alive" view rather than a
		// half-probed one; hysteresis corrects it within a few rounds.
		s.cluster.set.StartContext(s.baseCtx)
	}
	return s, nil
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Replication reports the effective replication factor in cluster
// mode, 0 on a single-node daemon.
func (s *Server) Replication() int {
	if s.cluster == nil {
		return 0
	}
	return s.cluster.set.Replication()
}

// ---- submission ----

// levelWise reports whether algo has generation boundaries — the
// precondition for checkpointing and per-generation streaming.
func levelWise(algo gpapriori.Algorithm) bool {
	switch algo {
	case gpapriori.AlgoEclat, gpapriori.AlgoEclatDiffset,
		gpapriori.AlgoFPGrowth, gpapriori.AlgoPipeline:
		return false
	}
	return true
}

// ckptPath is the per-fingerprint checkpoint file. Keying by
// fingerprint rather than job ID means a resubmitted identical request
// reuses whatever progress any earlier run left behind.
func (s *Server) ckptPath(key uint64) string {
	return filepath.Join(s.stateDir, fmt.Sprintf("ckpt-%016x.ckpt", key))
}

// submit routes one submission. On a single-node daemon it is
// submitLocal. In cluster mode it resolves the dataset's live owners:
// a locally-owned (or already-forwarded, or locally-cached) request
// runs here — after consulting the other owners' result caches — and
// anything else is forwarded to an owner (cluster.go). ctx bounds only
// the synchronous peer-cache consult; forwarding outlives the request.
func (s *Server) submit(ctx context.Context, req gpapriori.ServeMineRequest, id, idemKey string, forwarded bool) (*jobRecord, *gpapriori.ServeError) {
	if s.cluster == nil {
		return s.submitLocal(req, id, idemKey)
	}
	entry, ok := s.reg.Get(req.Dataset)
	if !ok {
		return nil, &gpapriori.ServeError{Status: http.StatusNotFound, Code: "unknown_dataset",
			Message: fmt.Sprintf("dataset %q is not registered", req.Dataset)}
	}
	key, minSup, err := gpapriori.ResultFingerprint(entry.DB, req.MiningConfig())
	if err != nil {
		return nil, badRequest("%v", err)
	}
	dsKey, ok := s.cluster.dsKeys[req.Dataset]
	if !ok {
		return s.submitLocal(req, id, idemKey)
	}
	owners := s.cluster.set.Resolve(dsKey)
	local := forwarded || containsPeer(owners, s.cluster.self) ||
		(!req.NoCache && s.cache.Contains(key))
	if !local {
		algo := req.Algorithm
		if algo == "" {
			algo = string(gpapriori.AlgoGPApriori)
		}
		return s.submitForward(req, id, idemKey, algo, key, minSup, entry.Info.Transactions, dsKey)
	}
	if !req.NoCache && !s.cache.Contains(key) {
		s.consultPeerCaches(ctx, req.Dataset, key, minSup, entry.Info.Transactions)
	}
	return s.submitLocal(req, id, idemKey)
}

// submitLocal validates req against the registry, answers from the
// result cache or the idempotency table when it can, and otherwise
// queues a mining job. id is empty for fresh submissions and fixed
// when replaying the drain journal; idemKey ("" = none) dedupes
// retried submissions.
func (s *Server) submitLocal(req gpapriori.ServeMineRequest, id, idemKey string) (*jobRecord, *gpapriori.ServeError) {
	entry, ok := s.reg.Get(req.Dataset)
	if !ok {
		return nil, &gpapriori.ServeError{Status: http.StatusNotFound, Code: "unknown_dataset",
			Message: fmt.Sprintf("dataset %q is not registered", req.Dataset)}
	}
	algo := req.Algorithm
	if algo == "" {
		algo = string(gpapriori.AlgoGPApriori)
	}
	cfg := req.MiningConfig()
	key, minSup, err := gpapriori.ResultFingerprint(entry.DB, cfg)
	if err != nil {
		return nil, badRequest("%v", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if idemKey != "" {
		// Dedup before the drain check: a retried submit must find its
		// original job even while the daemon stops admitting new work.
		if prevID, ok := s.idem[idemKey]; ok {
			if prev, ok := s.jobs[prevID]; ok {
				s.durability.IdempotentHits++
				return prev, nil
			}
		}
	}
	if s.draining {
		return nil, &gpapriori.ServeError{Status: http.StatusServiceUnavailable,
			Code: "draining", Message: "server is draining; not admitting new jobs",
			RetryAfter: s.jm.RetryAfterHint()}
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("job-%d", s.nextID)
	}
	rec := &jobRecord{
		id:      id,
		dataset: req.Dataset,
		algo:    algo,
		minSup:  minSup,
		trans:   entry.Info.Transactions,
		key:     key,
		req:     req,
		idemKey: idemKey,
		wake:    make(chan struct{}),
	}

	if !req.NoCache {
		if e, hit := s.cache.Get(key); hit {
			info := gpapriori.ServeJobInfo{
				ID: id, Dataset: req.Dataset, Algorithm: algo,
				State: gpapriori.JobDone.String(), Cached: true,
				MinSupport: e.minSupport, Transactions: e.transactions,
				Itemsets: len(e.itemsets),
			}
			rec.events = []gpapriori.ServeGenerationEvent{
				{Itemsets: e.itemsets, Final: true, Job: &info},
			}
			rec.terminal = true
			rec.final = info
			rec.resultBody = e.body
			s.cachedSubmitted++
			s.cachedDone++
			s.registerLocked(rec)
			return rec, nil
		}
	}

	if s.stateDir != "" && levelWise(cfg.Algorithm) {
		// Durability wiring: snapshot every generation, resume any
		// progress an interrupted earlier run of this fingerprint left.
		// A failing disk degrades the job (it mines on, checkpoint-less)
		// instead of failing it.
		path := s.ckptPath(key)
		cfg.Checkpoint = path
		cfg.ResumeFrom = path
		cfg.CheckpointEvery = 1
		cfg.OnCheckpointError = func(gen int, err error) error {
			s.noteCheckpointError(rec, gen, err)
			return nil
		}
	}
	cfg.OnGeneration = rec.addGeneration

	mj, err := s.jm.Submit(gpapriori.JobSpec{
		Name:     id,
		Priority: req.Priority,
		Deadline: time.Duration(req.DeadlineSec * float64(time.Second)),
		DB:       entry.DB,
		Config:   cfg,
	})
	if err != nil {
		return nil, s.mapSubmitError(err)
	}
	rec.mj = mj
	s.registerLocked(rec)
	s.wg.Add(1)
	go s.finalize(rec)
	return rec, nil
}

// registerLocked indexes a new record by id and idempotency key.
// Callers hold s.mu.
func (s *Server) registerLocked(rec *jobRecord) {
	s.jobs[rec.id] = rec
	if rec.idemKey != "" {
		s.idem[rec.idemKey] = rec.id
	}
}

// noteCheckpointError marks rec degraded after a swallowed checkpoint
// save failure. It runs on the mining goroutine.
func (s *Server) noteCheckpointError(rec *jobRecord, gen int, err error) {
	s.mu.Lock()
	s.durability.CheckpointErrors++
	s.mu.Unlock()
	rec.mu.Lock()
	first := !rec.degraded
	rec.degraded = true
	rec.signalLocked()
	rec.mu.Unlock()
	if first {
		s.mu.Lock()
		s.durability.DegradedJobs++
		s.mu.Unlock()
		s.logf("job %s degraded: checkpoint save at generation %d failed: %v (mining continues without a safety net)",
			rec.id, gen, err)
	}
}

// mapSubmitError translates JobManager admission failures to wire
// errors. Transient refusals carry the manager's pacing hint: the one
// inside the rejection when the admission controller measured it,
// otherwise the live drain-rate hint.
func (s *Server) mapSubmitError(err error) *gpapriori.ServeError {
	hint := s.jm.RetryAfterHint()
	var ra *jobs.RetryAfterError
	if errors.As(err, &ra) {
		hint = ra.RetryAfter
	}
	switch {
	case errors.Is(err, jobs.ErrOverloaded):
		return &gpapriori.ServeError{Status: http.StatusTooManyRequests,
			Code: "overloaded", Message: err.Error(), RetryAfter: hint}
	case errors.Is(err, jobs.ErrQueueFull):
		return &gpapriori.ServeError{Status: http.StatusTooManyRequests,
			Code: "queue_full", Message: err.Error(), RetryAfter: hint}
	case errors.Is(err, jobs.ErrOverBudget):
		return &gpapriori.ServeError{Status: http.StatusRequestEntityTooLarge,
			Code: "over_budget", Message: err.Error()}
	case errors.Is(err, jobs.ErrClosed):
		return &gpapriori.ServeError{Status: http.StatusServiceUnavailable,
			Code: "draining", Message: err.Error(), RetryAfter: hint}
	}
	return &gpapriori.ServeError{Status: http.StatusInternalServerError,
		Code: "internal", Message: err.Error()}
}

// addGeneration is the Config.OnGeneration hook: record the itemsets
// newly completed since the last boundary as one stream event. It runs
// on the mining goroutine, after the generation's checkpoint is
// durable.
func (r *jobRecord) addGeneration(gen int, frequent []gpapriori.Itemset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.terminal {
		return
	}
	var delta []gpapriori.Itemset
	for _, s := range frequent {
		if len(s.Items) > r.lastLen {
			delta = append(delta, s)
		}
	}
	r.lastLen = gen
	if len(delta) == 0 {
		return
	}
	r.events = append(r.events, gpapriori.ServeGenerationEvent{Gen: gen, Itemsets: delta})
	r.signalLocked()
}

// signalLocked wakes every blocked reader. Callers hold r.mu.
func (r *jobRecord) signalLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// finalize waits for the job's terminal state, renders the canonical
// result body, feeds the cache and fault aggregate, and appends the
// final stream event.
func (s *Server) finalize(rec *jobRecord) {
	defer s.wg.Done()
	<-rec.mj.Done()
	res, err := rec.mj.Result()
	info := gpapriori.ServeJobInfo{
		ID: rec.id, Dataset: rec.dataset, Algorithm: rec.algo,
		State: rec.mj.State().String(), MinSupport: rec.minSup,
		Transactions: rec.trans,
	}
	var body []byte
	if err != nil {
		info.Error = err.Error()
	} else {
		info.Itemsets = len(res.Itemsets)
		info.HostSeconds = res.HostSeconds
		info.DeviceSeconds = res.DeviceSeconds
		info.Faults = res.Faults
		body = renderResult(res.Itemsets)
		s.cache.Put(&cacheEntry{
			key: rec.key, body: body, itemsets: res.Itemsets,
			minSupport: rec.minSup, transactions: rec.trans,
		})
		s.addFaults(res.Faults)
	}
	rec.complete(info, body, resultItemsets(res))
}

// resultItemsets guards the itemset slice of a failed run.
func resultItemsets(res *gpapriori.Result) []gpapriori.Itemset {
	if res == nil {
		return nil
	}
	return res.Itemsets
}

// complete marks the record terminal: any itemsets not yet streamed
// ride on the final event together with the terminal job info.
func (r *jobRecord) complete(info gpapriori.ServeJobInfo, body []byte, itemsets []gpapriori.Itemset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var remainder []gpapriori.Itemset
	for _, s := range itemsets {
		if len(s.Items) > r.lastLen {
			remainder = append(remainder, s)
		}
	}
	info.Degraded = r.degraded
	info.Requeued = r.requeued
	r.events = append(r.events, gpapriori.ServeGenerationEvent{
		Itemsets: remainder, Final: true, Job: &info,
	})
	r.terminal = true
	r.final = info
	r.resultBody = body
	r.signalLocked()
}

// renderResult produces the resultio-canonical text body — the same
// bytes the offline CLI writes, which is what makes served and offline
// results diffable.
func renderResult(itemsets []gpapriori.Itemset) []byte {
	rs := &dataset.ResultSet{}
	for _, s := range itemsets {
		rs.Add(s.Items, s.Support)
	}
	var buf bytes.Buffer
	if err := resultio.Write(&buf, rs); err != nil {
		// resultio.Write to a bytes.Buffer cannot fail; keep the
		// invariant loud rather than silently serving an empty body.
		panic(fmt.Sprintf("server: rendering result: %v", err))
	}
	return buf.Bytes()
}

// addFaults folds one run's fault stats into the server aggregate.
func (s *Server) addFaults(f *gpapriori.FaultStats) {
	if f == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults.Injected += f.Injected
	s.faults.KernelFaults += f.KernelFaults
	s.faults.TransferFaults += f.TransferFaults
	s.faults.Hangs += f.Hangs
	s.faults.Retries += f.Retries
	s.faults.Failovers += f.Failovers
	s.faults.DegradedCandidates += f.DegradedCandidates
	s.faults.RecoverySeconds += f.RecoverySeconds
}

// snapshot returns the record's current job info, terminal flag, and
// the channel that signals the next change.
func (r *jobRecord) snapshot() (gpapriori.ServeJobInfo, bool, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.terminal {
		return r.final, true, r.wake
	}
	state := r.fwdState
	if r.mj != nil {
		state = r.mj.State().String()
	}
	info := gpapriori.ServeJobInfo{
		ID: r.id, Dataset: r.dataset, Algorithm: r.algo,
		State: state, MinSupport: r.minSup,
		Transactions: r.trans, Degraded: r.degraded,
		Forwarded: r.forwardedTo,
	}
	return info, false, r.wake
}

// isDegraded reads the sticky degraded flag.
func (r *jobRecord) isDegraded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded
}

// markRequeued flags a journaled job so its terminal (drain-canceled)
// event tells clients to follow it through the restart.
func (r *jobRecord) markRequeued() {
	r.mu.Lock()
	r.requeued = true
	r.mu.Unlock()
}

// isTerminal reads the terminal flag alone (drain's snapshot loop).
func (r *jobRecord) isTerminal() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.terminal
}

// eventsFrom returns the stream events at index i and beyond, plus the
// terminal flag and wake channel.
func (r *jobRecord) eventsFrom(i int) ([]gpapriori.ServeGenerationEvent, bool, <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var evs []gpapriori.ServeGenerationEvent
	if i < len(r.events) {
		evs = append(evs, r.events[i:]...)
	}
	return evs, r.terminal, r.wake
}

// ---- handlers ----

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeServeError renders a typed error body. Transient refusals
// (overloaded, queue full, draining) advertise Retry-After so
// resilient clients pace their retries: the error's own drain-derived
// hint when present, a conservative 1s floor otherwise — every 429 and
// 503 carries the header, without exception.
func writeServeError(w http.ResponseWriter, se *gpapriori.ServeError) {
	if se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable {
		sec := int(se.RetryAfter / time.Second)
		if sec < 1 {
			sec = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(sec))
	}
	writeJSON(w, se.Status, se)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := gpapriori.ServeHealth{Status: "ok"}
	if s.cluster != nil {
		h.Cluster = s.cluster.health()
	}
	s.mu.Lock()
	if s.anyDegradedLocked() {
		h.Status = "degraded"
	}
	// A replica of a locally-owned dataset sitting on a suspected peer
	// means a single further failure loses redundancy: degraded, not ok.
	if h.Cluster != nil && len(h.Cluster.DegradedDatasets) > 0 {
		h.Status = "degraded"
	}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// anyDegradedLocked reports whether any live job is mining without a
// safety net. Callers hold s.mu.
func (s *Server) anyDegradedLocked() bool {
	for _, rec := range s.jobs {
		if rec.isDegraded() && !rec.isTerminal() {
			return true
		}
	}
	return false
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	st := gpapriori.ServeStats{
		QueueLen:      s.jm.QueueLen(),
		InFlightBytes: s.jm.InFlightBytes(),
		Jobs:          s.jm.Counters(),
		Cache:         s.cache.Stats(),
		Datasets:      s.reg.List(),
	}
	st.Overload.OverloadStats = s.jm.Overload()
	s.mu.Lock()
	st.Draining = s.draining
	st.Jobs.Submitted += s.cachedSubmitted
	st.Jobs.Done += s.cachedDone
	st.Faults = s.faults
	st.Durability = s.durability
	st.Overload.StreamEvictions = s.overCounts.StreamEvictions
	st.Overload.BodyLimitRejections = s.overCounts.BodyLimitRejections
	st.Overload.HandlerTimeouts = s.overCounts.HandlerTimeouts
	s.mu.Unlock()
	if s.cluster != nil {
		st.Cluster = s.cluster.stats()
		// Forwarded jobs never enter the local jobs manager; fold them
		// into the headline counters so totals stay meaningful.
		st.Jobs.Submitted += st.Cluster.ForwardedJobs
		st.Jobs.Done += st.Cluster.ForwardedDone
		st.Jobs.Failed += st.Cluster.ForwardedFailed
		st.Jobs.Canceled += s.cluster.fwdCanceled.Load()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

// maxIdemKeyLen bounds the Idempotency-Key header: long enough for any
// sane key scheme, short enough that a hostile client cannot grow the
// dedup table arbitrarily per entry.
const maxIdemKeyLen = 128

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	idemKey := r.Header.Get("Idempotency-Key")
	if len(idemKey) > maxIdemKeyLen {
		writeServeError(w, badRequest("Idempotency-Key longer than %d bytes", maxIdemKeyLen))
		return
	}
	// Bound the body (typed 413 past the limit) and the time a client
	// may take to send it: a slowloris body hits the read deadline and
	// the decode fails instead of pinning the handler.
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Now().Add(s.over.HandlerTimeout))
	req, se := DecodeMineRequest(http.MaxBytesReader(w, r.Body, s.over.MaxBodyBytes))
	if se != nil {
		if se.Code == "body_too_large" {
			s.noteBodyRejected()
		}
		writeServeError(w, se)
		return
	}
	forwarded := r.Header.Get(gpapriori.ForwardedHeader) != ""
	rec, se := s.submit(r.Context(), *req, "", idemKey, forwarded)
	if se != nil {
		writeServeError(w, se)
		return
	}
	info, terminal, _ := rec.snapshot()
	status := http.StatusAccepted
	if terminal {
		// A cache hit is already complete: answer 200, not 202.
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// lookup finds a job record or writes the typed 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*jobRecord, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusNotFound,
			Code: "unknown_job", Message: fmt.Sprintf("no job %q", id)})
		return nil, false
	}
	return rec, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	wait := 0
	if v := r.URL.Query().Get("wait_sec"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeServeError(w, badRequest("wait_sec must be a non-negative integer"))
			return
		}
		if n > 60 {
			n = 60
		}
		wait = n
	}
	deadline := time.Now().Add(time.Duration(wait) * time.Second)
	for {
		info, terminal, wake := rec.snapshot()
		remain := time.Until(deadline)
		if terminal || wait == 0 || remain <= 0 {
			writeJSON(w, http.StatusOK, info)
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
		case <-timer.C:
		case <-s.drainCh:
			// Drain releases held long-polls immediately: the caller
			// gets the current state now rather than stalling shutdown
			// for the rest of its wait_sec window.
			timer.Stop()
			info, _, _ := rec.snapshot()
			writeJSON(w, http.StatusOK, info)
			return
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if rec.mj != nil {
		s.jm.Cancel(rec.mj)
	}
	if rec.fwdCancel != nil {
		rec.fwdCancel()
	}
	info, _, _ := rec.snapshot()
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	afterGen := 0
	if v := r.URL.Query().Get("after_gen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeServeError(w, badRequest("after_gen must be a non-negative integer"))
			return
		}
		afterGen = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Every write carries a deadline: a subscriber that cannot absorb
	// one batch within StreamWriteTimeout is evicted (counted, logged)
	// instead of holding event memory and a connection while the
	// buffers behind it fill. The evicted client reconnects with
	// ?after_gen=N and loses nothing — the event log is append-only.
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	i := 0
	for {
		evs, terminal, wake := rec.eventsFrom(i)
		// Bound the in-flight copy per cycle; a truncated batch loops
		// straight back for the rest instead of waiting.
		truncated := false
		if len(evs) > s.over.StreamBatch {
			evs = evs[:s.over.StreamBatch]
			truncated = true
		}
		sent := 0
		for _, ev := range evs {
			i++
			ev, keep := filterEvent(ev, afterGen)
			if !keep {
				continue
			}
			rc.SetWriteDeadline(time.Now().Add(s.over.StreamWriteTimeout))
			if err := enc.Encode(ev); err != nil {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					s.noteStreamEviction(rec.id, err)
				}
				return
			}
			sent++
		}
		if sent > 0 {
			rc.SetWriteDeadline(time.Now().Add(s.over.StreamWriteTimeout))
			if err := rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
				if errors.Is(err, os.ErrDeadlineExceeded) {
					s.noteStreamEviction(rec.id, err)
				}
				return
			}
		}
		if truncated {
			continue
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// filterEvent drops what a resuming client (?after_gen=N) already has:
// whole generation events at or below N, and — because a replayed or
// cache-answered job may pack many generations into one event — any
// itemset no longer than N inside the events that survive. keep=false
// drops the event entirely.
func filterEvent(ev gpapriori.ServeGenerationEvent, afterGen int) (gpapriori.ServeGenerationEvent, bool) {
	if afterGen <= 0 {
		return ev, true
	}
	if !ev.Final && ev.Gen > 0 && ev.Gen <= afterGen {
		return ev, false
	}
	var kept []gpapriori.Itemset
	for _, s := range ev.Itemsets {
		if len(s.Items) > afterGen {
			kept = append(kept, s)
		}
	}
	ev.Itemsets = kept
	if !ev.Final && len(kept) == 0 {
		return ev, false
	}
	return ev, true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookup(w, r)
	if !ok {
		return
	}
	rec.mu.Lock()
	terminal, final, body := rec.terminal, rec.final, rec.resultBody
	rec.mu.Unlock()
	if !terminal {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusConflict,
			Code: "conflict", Message: fmt.Sprintf("job %q has not finished", rec.id)})
		return
	}
	if final.State != gpapriori.JobDone.String() {
		writeServeError(w, &gpapriori.ServeError{Status: http.StatusConflict,
			Code: "conflict", Message: fmt.Sprintf("job %q ended %s: %s", rec.id, final.State, final.Error)})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// ---- drain and restart ----

// journalEntry is one unfinished request in the drain journal. The
// idempotency key rides along so a replayed job keeps deduping the
// retried submissions of its original client.
type journalEntry struct {
	ID      string                     `json:"id"`
	IdemKey string                     `json:"idem_key,omitempty"`
	Request gpapriori.ServeMineRequest `json:"request"`
}

// journal is the drain journal file body.
type journal struct {
	Jobs []journalEntry `json:"jobs"`
}

// journalPath is the drain journal location.
func (s *Server) journalPath() string { return filepath.Join(s.stateDir, "pending.json") }

// Drain performs graceful shutdown: stop admitting, journal every
// unfinished request (its last generation checkpoint is already
// durable — a generation is only streamed after its snapshot lands),
// cancel what is running, and wait for the manager and finalizers to
// settle. A restarted server replays the journal and resumes each job
// from its checkpoint to the identical result. ctx bounds the wait;
// expiry abandons the remaining jobs to process exit.
//
// A journal that cannot be written is a loss, not a failure: Drain
// logs an explicit loss report naming the jobs whose resumable state
// is gone, records it in the durability stats, and still returns nil —
// the daemon exits 0 having shut down as cleanly as the disk allowed.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.drainCh)
	var pending []*jobRecord
	var entries []journalEntry
	for _, rec := range s.jobs {
		if !rec.isTerminal() {
			pending = append(pending, rec)
			entries = append(entries, journalEntry{
				ID: rec.id, IdemKey: rec.idemKey, Request: rec.requestForJournal(),
			})
		}
	}
	s.mu.Unlock()
	if s.cluster != nil {
		// Stop the prober outside s.mu: Stop blocks on the probe loop's
		// exit, and a probe in flight may be waiting on a slow peer.
		s.cluster.set.Stop()
	}
	// The records were collected in map order; the journal on disk and
	// every log line derived from it must not depend on that.
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })

	if s.stateDir != "" && len(entries) > 0 {
		if err := writeJournal(s.journalPath(), journal{Jobs: entries}); err != nil {
			ids := make([]string, len(entries))
			for i, e := range entries {
				ids[i] = e.ID
			}
			s.mu.Lock()
			s.durability.JournalErrors++
			s.durability.LostJobs += int64(len(entries))
			s.mu.Unlock()
			s.logf("drain journal failed: %v", err)
			s.logf("loss report: %d unfinished jobs will not resume after restart: %v", len(ids), ids)
		} else {
			for _, rec := range pending {
				rec.markRequeued()
			}
		}
	}
	for _, rec := range pending {
		if rec.mj != nil {
			s.jm.Cancel(rec.mj)
		}
		if rec.fwdCancel != nil {
			rec.fwdCancel()
		}
	}
	done := make(chan struct{})
	go func() {
		s.jm.Close()
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// requestForJournal is the persisted form of the record's request: the
// full config (so the fingerprint — and with it the checkpoint path —
// re-derives identically on replay), with the support threshold pinned
// to the resolved absolute value and the cache re-enabled: if an
// identical request completed meanwhile, the cached answer is the
// result.
func (r *jobRecord) requestForJournal() gpapriori.ServeMineRequest {
	req := r.req
	req.MinSupport = r.minSup
	req.RelativeSupport = 0
	req.NoCache = false
	return req
}

// writeJournal persists the journal atomically (temp + fsync + rename),
// the same discipline as checkpoint saves, through the same fsfault
// seam and with crashpoints at the same boundaries.
func writeJournal(path string, j journal) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsfault.Create(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	fsfault.Crash(fsfault.CrashJournalAfterTemp)
	if err := fsfault.Rename(tmp.Name(), path); err != nil {
		return err
	}
	fsfault.Crash(fsfault.CrashJournalAfterRename)
	return nil
}

// replayJournal resubmits the jobs a previous drain left unfinished.
// Jobs whose dataset is no longer registered become terminal failed
// records, so a client polling the old ID gets an answer instead of a
// 404 that lies about history. A truncated or corrupt journal is
// quarantined (pending.json.corrupt-<n>), logged, and the daemon boots
// clean — history is lost, availability is not.
func (s *Server) replayJournal() error {
	if s.stateDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var j journal
	if err := json.Unmarshal(data, &j); err != nil {
		return s.quarantineJournal(err)
	}
	for _, e := range j.Jobs {
		s.bumpNextID(e.ID)
		if _, se := s.submit(s.baseCtx, e.Request, e.ID, e.IdemKey, false); se != nil {
			s.failRecord(e, se)
		}
	}
	fsfault.Crash(fsfault.CrashJournalBeforeReplayRemove)
	return os.Remove(s.journalPath())
}

// quarantineJournal moves a corrupt pending.json aside to the first
// free pending.json.corrupt-<n> so the damage stays inspectable, logs
// the loss, and lets the daemon boot clean.
func (s *Server) quarantineJournal(cause error) error {
	src := s.journalPath()
	for n := 1; ; n++ {
		dst := fmt.Sprintf("%s.corrupt-%d", src, n)
		if _, err := os.Stat(dst); err == nil {
			continue
		} else if !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: quarantining drain journal: %w", err)
		}
		if err := fsfault.Rename(src, dst); err != nil {
			return fmt.Errorf("server: quarantining drain journal: %w", err)
		}
		s.mu.Lock()
		s.durability.JournalsQuarantined++
		s.mu.Unlock()
		s.logf("drain journal %s is corrupt (%v); quarantined to %s, booting clean (its jobs will not resume)",
			src, cause, dst)
		return nil
	}
}

// bumpNextID keeps fresh IDs ahead of every replayed one.
func (s *Server) bumpNextID(id string) {
	var n int64
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return
	}
	s.mu.Lock()
	if n > s.nextID {
		s.nextID = n
	}
	s.mu.Unlock()
}

// failRecord registers a terminal failed record for a journal entry
// that could not be resubmitted.
func (s *Server) failRecord(e journalEntry, se *gpapriori.ServeError) {
	info := gpapriori.ServeJobInfo{
		ID: e.ID, Dataset: e.Request.Dataset, Algorithm: e.Request.Algorithm,
		State: gpapriori.JobFailed.String(),
		Error: fmt.Sprintf("resume after restart: %s", se.Message),
	}
	rec := &jobRecord{
		id: e.ID, dataset: e.Request.Dataset, algo: e.Request.Algorithm,
		wake:     make(chan struct{}),
		events:   []gpapriori.ServeGenerationEvent{{Final: true, Job: &info}},
		terminal: true,
		final:    info,
	}
	s.mu.Lock()
	s.jobs[e.ID] = rec
	s.mu.Unlock()
}
