// The dataset registry: named databases loaded and transposed once,
// mined many times. The registry is the serving analogue of a loaded
// model — the expensive part of a one-shot CLI run (reading the file,
// building the vertical layout) is paid at registration, and every
// subsequent query hits the resident database. Entries carry the
// modeled vertical-bitset footprint so admission control and /statsz
// account for what residency costs.
package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gpapriori"
)

// DatasetEntry is one registered database.
type DatasetEntry struct {
	// Name addresses the entry in mining requests.
	Name string
	// Spec records how the database was loaded (for the drain journal
	// and /statsz).
	Spec string
	// DB is the resident database.
	DB *gpapriori.Database
	// Info is the externally visible description.
	Info gpapriori.ServeDatasetInfo
}

// Registry holds the server's named datasets.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*DatasetEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*DatasetEntry{}}
}

// Add registers db under name. Re-registering a name is an error: a
// dataset swap would silently invalidate cached results and running
// jobs that reference the old content.
func (r *Registry) Add(name, spec string, db *gpapriori.Database) (*DatasetEntry, error) {
	if err := validateDatasetName(name); err != nil {
		return nil, err
	}
	if db == nil || db.Len() == 0 {
		return nil, fmt.Errorf("server: dataset %q is empty", name)
	}
	st := db.Stats()
	e := &DatasetEntry{
		Name: name,
		Spec: spec,
		DB:   db,
		Info: gpapriori.ServeDatasetInfo{
			Name:         name,
			Transactions: st.NumTrans,
			NumItems:     st.NumItems,
			AvgLength:    st.AvgLength,
			BitsetBytes:  db.EstimateBitsetBytes(),
		},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return nil, fmt.Errorf("server: dataset %q already registered", name)
	}
	r.entries[name] = e
	return e, nil
}

// AddSpec loads the dataset described by spec and registers it under
// name. Spec forms:
//
//	file:<path>            FIMI .dat file (gzip transparently)
//	gen:<name>:<scale>     generated paper dataset (chess, pumsb, …)
//	quest:<items>:<trans>:<avglen>:<seed>   IBM Quest synthetic
func (r *Registry) AddSpec(name, spec string) (*DatasetEntry, error) {
	db, err := LoadDatasetSpec(spec)
	if err != nil {
		return nil, fmt.Errorf("server: dataset %q: %w", name, err)
	}
	return r.Add(name, spec, db)
}

// LoadDatasetSpec loads a database from a registry spec string.
func LoadDatasetSpec(spec string) (*gpapriori.Database, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("spec %q needs the form kind:args (file:, gen:, quest:)", spec)
	}
	switch kind {
	case "file":
		return gpapriori.ReadDatabaseFile(rest)
	case "gen":
		dsName, scaleStr, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("spec %q needs gen:<dataset>:<scale>", spec)
		}
		scale, err := strconv.ParseFloat(scaleStr, 64)
		if err != nil || scale <= 0 || scale > 1 {
			return nil, fmt.Errorf("spec %q: scale must be in (0,1]", spec)
		}
		return gpapriori.GeneratePaperDataset(dsName, scale)
	case "quest":
		f := strings.Split(rest, ":")
		if len(f) != 4 {
			return nil, fmt.Errorf("spec %q needs quest:<items>:<trans>:<avglen>:<seed>", spec)
		}
		items, err1 := strconv.Atoi(f[0])
		trans, err2 := strconv.Atoi(f[1])
		avg, err3 := strconv.ParseFloat(f[2], 64)
		seed, err4 := strconv.ParseInt(f[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
			items <= 0 || trans <= 0 || avg <= 0 {
			return nil, fmt.Errorf("spec %q: bad quest parameters", spec)
		}
		return gpapriori.GenerateQuest(items, trans, avg, avg/2, seed), nil
	default:
		return nil, fmt.Errorf("spec %q: unknown kind %q (file, gen, quest)", spec, kind)
	}
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*DatasetEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List describes every registered dataset, sorted by name so the
// listing is deterministic.
func (r *Registry) List() []gpapriori.ServeDatasetInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]gpapriori.ServeDatasetInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResidentBytes totals the modeled bitset footprint of every entry.
func (r *Registry) ResidentBytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, e := range r.entries {
		total += e.Info.BitsetBytes
	}
	return total
}

// validateDatasetName bounds registry names: non-empty, printable,
// path- and JSON-safe.
func validateDatasetName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("server: dataset name must be 1–128 bytes")
	}
	for _, r := range name {
		if r <= ' ' || r == 0x7f || r == '/' || r == '\\' {
			return fmt.Errorf("server: dataset name %q contains reserved characters", name)
		}
	}
	return nil
}
