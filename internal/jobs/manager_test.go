package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	m, err := NewManager(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		opt  Options
		ok   bool
		name string
	}{
		{Options{MemoryBudgetBytes: 1}, true, ""},
		{Options{}, false, "MemoryBudgetBytes"},
		{Options{MemoryBudgetBytes: -1}, false, "MemoryBudgetBytes"},
		{Options{MemoryBudgetBytes: 1, QueueLimit: -1}, false, "QueueLimit"},
		{Options{MemoryBudgetBytes: 1, Workers: -1}, false, "Workers"},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.opt, err, c.ok)
		}
		if err != nil && !contains(err.Error(), c.name) {
			t.Errorf("Validate(%+v) error %q does not name %s", c.opt, err, c.name)
		}
	}
}

func contains(s, sub string) bool { return sub == "" || len(s) >= len(sub) && index(s, sub) }

func index(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100, Workers: 1})
	ran := false
	j := &Job{Name: "a", MemBytes: 10, Run: func(ctx context.Context) error {
		ran = true
		return nil
	}}
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if !ran || j.State() != Done || j.Err() != nil {
		t.Errorf("ran=%v state=%v err=%v", ran, j.State(), j.Err())
	}
}

func TestJobFailure(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100})
	boom := errors.New("kernel fault")
	j := &Job{Name: "a", Run: func(ctx context.Context) error { return boom }}
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed || !errors.Is(j.Err(), boom) {
		t.Errorf("state=%v err=%v", j.State(), j.Err())
	}
}

func TestJobDeadline(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100})
	j := &Job{Name: "slow", Deadline: 10 * time.Millisecond, Run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}}
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != Failed || !errors.Is(j.Err(), ErrDeadline) {
		t.Errorf("state=%v err=%v, want Failed/ErrDeadline", j.State(), j.Err())
	}
}

func TestSubmitRejections(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100})
	if err := m.Submit(&Job{Name: "norun"}); err == nil {
		t.Error("accepted a job with no Run function")
	}
	nop := func(ctx context.Context) error { return nil }
	if err := m.Submit(&Job{Name: "neg", MemBytes: -1, Run: nop}); err == nil {
		t.Error("accepted a negative footprint")
	}
	if err := m.Submit(&Job{Name: "huge", MemBytes: 101, Run: nop}); !errors.Is(err, ErrOverBudget) {
		t.Errorf("oversized job: want ErrOverBudget, got %v", err)
	}
}

// TestMemoryBudgetNeverExceeded is the admission-control invariant: under
// a swarm of concurrent jobs with random footprints, the sum of in-flight
// reservations never exceeds the budget.
func TestMemoryBudgetNeverExceeded(t *testing.T) {
	const budget = 100
	m := newTestManager(t, Options{MemoryBudgetBytes: budget, Workers: 8, QueueLimit: 256})
	var inFlight, maxSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		mem := int64(10 + (i*7)%60)
		j := &Job{Name: fmt.Sprintf("j%d", i), MemBytes: mem, Run: func(ctx context.Context) error {
			cur := inFlight.Add(mem)
			for {
				old := maxSeen.Load()
				if cur <= old || maxSeen.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-mem)
			return nil
		}}
		if err := m.Submit(j); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); <-j.Done() }()
	}
	wg.Wait()
	if got := maxSeen.Load(); got > budget {
		t.Errorf("in-flight memory peaked at %d, budget is %d", got, budget)
	}
	if got := m.InFlightBytes(); got != 0 {
		t.Errorf("reservations leaked: %d bytes still held", got)
	}
}

// TestPriorityAdmissionOrder: with one worker, queued jobs start strictly
// by priority (FIFO within a class), regardless of submission order.
func TestPriorityAdmissionOrder(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100, Workers: 1, QueueLimit: 16})
	release := make(chan struct{})
	gate := &Job{Name: "gate", MemBytes: 1, Run: func(ctx context.Context) error {
		<-release
		return nil
	}}
	if err := m.Submit(gate); err != nil {
		t.Fatal(err)
	}
	// Wait until the gate occupies the only worker.
	for m.QueueLen() > 0 {
		time.Sleep(time.Millisecond)
	}
	var mu sync.Mutex
	var order []string
	mk := func(name string, prio int) *Job {
		return &Job{Name: name, Priority: prio, MemBytes: 1, Run: func(ctx context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}}
	}
	jobs := []*Job{mk("low-1", 1), mk("high-1", 9), mk("mid", 5), mk("high-2", 9), mk("low-2", 1)}
	for _, j := range jobs {
		if err := m.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	for _, j := range jobs {
		<-j.Done()
	}
	want := []string{"high-1", "high-2", "mid", "low-1", "low-2"}
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("admission order %v, want %v", order, want)
	}
}

// TestHeadOfLineBlocking: a big high-priority job at the head blocks
// smaller low-priority jobs from sneaking past it — start order stays a
// pure function of priority and submission order.
func TestHeadOfLineBlocking(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100, Workers: 4, QueueLimit: 16})
	release := make(chan struct{})
	hog := &Job{Name: "hog", Priority: 5, MemBytes: 50, Run: func(ctx context.Context) error {
		<-release
		return nil
	}}
	if err := m.Submit(hog); err != nil {
		t.Fatal(err)
	}
	for m.QueueLen() > 0 {
		time.Sleep(time.Millisecond)
	}
	var mu sync.Mutex
	var order []string
	mk := func(name string, prio int, mem int64) *Job {
		return &Job{Name: name, Priority: prio, MemBytes: mem, Run: func(ctx context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}}
	}
	// big cannot fit beside the hog (50+80 > 100); small could (50+30),
	// so only priority blocking keeps it queued. After the hog releases,
	// big+small still exceed the budget, so their start order is forcibly
	// serial and observable.
	big := mk("big-high", 9, 80)
	small := mk("small-low", 1, 30)
	if err := m.Submit(big); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(small); err != nil {
		t.Fatal(err)
	}
	// Give the scheduler a chance to (incorrectly) start small-low.
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	ran := len(order)
	mu.Unlock()
	if ran != 0 {
		t.Fatalf("jobs %v started past a blocked higher-priority head", order)
	}
	close(release)
	<-big.Done()
	<-small.Done()
	mu.Lock()
	defer mu.Unlock()
	if fmt.Sprint(order) != fmt.Sprint([]string{"big-high", "small-low"}) {
		t.Errorf("order %v, want big-high before small-low", order)
	}
}

// TestShedLowestPriorityFirst: queue overflow sheds deterministically —
// the lowest-priority, most recently submitted job goes first, and a
// submission that is itself the lowest is rejected outright.
func TestShedLowestPriorityFirst(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 100, Workers: 1, QueueLimit: 3})
	release := make(chan struct{})
	gate := &Job{Name: "gate", MemBytes: 1, Run: func(ctx context.Context) error {
		<-release
		return nil
	}}
	if err := m.Submit(gate); err != nil {
		t.Fatal(err)
	}
	for m.QueueLen() > 0 {
		time.Sleep(time.Millisecond)
	}
	defer close(release)
	nop := func(ctx context.Context) error { return nil }
	low1 := &Job{Name: "low-1", Priority: 1, MemBytes: 1, Run: nop}
	low2 := &Job{Name: "low-2", Priority: 1, MemBytes: 1, Run: nop}
	mid := &Job{Name: "mid", Priority: 5, MemBytes: 1, Run: nop}
	for _, j := range []*Job{low1, low2, mid} {
		if err := m.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// Queue is now full. An equal-priority submission is rejected…
	if err := m.Submit(&Job{Name: "low-3", Priority: 1, MemBytes: 1, Run: nop}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("equal-priority overflow: want ErrQueueFull, got %v", err)
	}
	// …a higher-priority one sheds the lowest-priority latest job: low-2.
	high := &Job{Name: "high", Priority: 9, MemBytes: 1, Run: nop}
	if err := m.Submit(high); err != nil {
		t.Fatal(err)
	}
	<-low2.Done()
	if low2.State() != Shed || !errors.Is(low2.Err(), ErrShed) {
		t.Errorf("low-2: state=%v err=%v, want Shed/ErrShed", low2.State(), low2.Err())
	}
	if low1.State() == Shed {
		t.Error("low-1 shed before the later-submitted low-2")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m, err := NewManager(Options{MemoryBudgetBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	err = m.Submit(&Job{Name: "late", Run: func(ctx context.Context) error { return nil }})
	if !errors.Is(err, ErrClosed) {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	m, err := NewManager(Options{MemoryBudgetBytes: 100, Workers: 1, QueueLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	gate := &Job{Name: "gate", MemBytes: 1, Run: func(ctx context.Context) error {
		<-release
		return nil
	}}
	if err := m.Submit(gate); err != nil {
		t.Fatal(err)
	}
	for m.QueueLen() > 0 {
		time.Sleep(time.Millisecond)
	}
	queued := &Job{Name: "queued", MemBytes: 1, Run: func(ctx context.Context) error { return nil }}
	if err := m.Submit(queued); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(release)
	}()
	m.Close()
	if gate.State() != Done {
		t.Errorf("running job at close: state=%v, want Done", gate.State())
	}
	if queued.State() != Failed || !errors.Is(queued.Err(), ErrClosed) {
		t.Errorf("queued job at close: state=%v err=%v, want Failed/ErrClosed", queued.State(), queued.Err())
	}
}

func TestMarkCheckpointed(t *testing.T) {
	m := newTestManager(t, Options{MemoryBudgetBytes: 10})
	started := make(chan struct{})
	release := make(chan struct{})
	var j *Job
	j = &Job{Name: "ck", Run: func(ctx context.Context) error {
		close(started)
		<-release
		j.MarkCheckpointed()
		return nil
	}}
	if err := m.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-started
	close(release)
	<-j.Done()
	if j.State() != Done {
		t.Errorf("state=%v, want Done", j.State())
	}
	// A checkpoint racing termination must not resurrect the job.
	j.MarkCheckpointed()
	if j.State() != Done {
		t.Errorf("MarkCheckpointed resurrected a terminal job: %v", j.State())
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Queued: "queued", Admitted: "admitted", Running: "running",
		Checkpointed: "checkpointed", Done: "done", Failed: "failed", Shed: "shed",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
