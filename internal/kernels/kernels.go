// Package kernels implements GPApriori's device-side support counting on
// the gpusim simulator — the paper's Section IV.
//
// The layout and kernel follow the paper exactly:
//
//   - Only the first generation (single-item) static bitsets are resident
//     in device memory, flattened item-major and 64-byte aligned.
//   - Each candidate's support is computed by one thread block via
//     complete intersection: every thread ANDs a 32-bit word-slice of all
//     k item vectors, __popc's the result, and a parallel tree reduction
//     in shared memory sums the per-thread counts (Figure 5).
//   - The three optimizations of Section IV.3 are selectable: candidate
//     preloading into shared memory, manual loop unrolling, and block
//     size tuning.
//
// A tidset-join kernel is also provided purely for the Figure 3 ablation:
// it shows the uncoalesced, divergent access pattern the bitset layout
// eliminates.
package kernels

import (
	"fmt"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gpusim"
	"gpapriori/internal/vertical"
)

// DeviceDB is the first-generation vertical database resident in device
// memory: numItems bitset vectors of wordsPerVec 32-bit words each,
// item-major.
type DeviceDB struct {
	dev         *gpusim.Device
	vectors     gpusim.Buffer
	wordsPerVec int // 32-bit words per item vector (64-byte aligned)
	numItems    int
	numTrans    int
}

// Upload flattens the bitset vertical database and copies it to device
// memory — the one-time host→device transfer of the paper's workflow.
func Upload(dev *gpusim.Device, v *vertical.BitsetDB) (*DeviceDB, error) {
	if len(v.Vectors) == 0 {
		return nil, fmt.Errorf("kernels: empty vertical database")
	}
	w64 := v.WordsPerVector()
	flat64 := v.Flatten()
	flat32 := make([]uint32, len(flat64)*2)
	for i, w := range flat64 {
		flat32[2*i] = uint32(w)
		flat32[2*i+1] = uint32(w >> 32)
	}
	buf, err := dev.Malloc(len(flat32))
	if err != nil {
		return nil, fmt.Errorf("kernels: uploading %d items × %d words: %w", len(v.Vectors), w64*2, err)
	}
	if err := dev.TryCopyToDevice(buf, flat32); err != nil {
		return nil, fmt.Errorf("kernels: uploading %d items × %d words: %w", len(v.Vectors), w64*2, err)
	}
	return &DeviceDB{
		dev:         dev,
		vectors:     buf,
		wordsPerVec: w64 * 2,
		numItems:    len(v.Vectors),
		numTrans:    v.NumTrans,
	}, nil
}

// NumItems returns the number of item vectors resident on the device.
func (d *DeviceDB) NumItems() int { return d.numItems }

// NumTrans returns the bit width (transaction count) of each vector.
func (d *DeviceDB) NumTrans() int { return d.numTrans }

// WordsPerVector returns the 32-bit word count of each vector.
func (d *DeviceDB) WordsPerVector() int { return d.wordsPerVec }

// Device returns the underlying simulated device.
func (d *DeviceDB) Device() *gpusim.Device { return d.dev }

// Options are the kernel-tuning knobs of the paper's Section IV.3.
type Options struct {
	// BlockSize is the threads-per-block ("hand-tuned block size"). The
	// paper's default for the T10 generation of hardware is 256.
	BlockSize int
	// Preload copies the candidate's item ids into shared memory at kernel
	// start instead of re-reading them from global memory on every word
	// iteration.
	Preload bool
	// Unroll is the manual unroll factor of the word loop (1 = no
	// unrolling; the paper hand-unrolls; 4 is typical).
	Unroll int
	// DeadlineSec is the watchdog deadline for each kernel launch in
	// modeled seconds: a launch that hangs (injected fault) past it is
	// killed and SupportCounts returns gpusim.ErrWatchdogTimeout. 0
	// disables the watchdog.
	DeadlineSec float64
	// PrefixCache selects the two-phase prefix-class kernel variant:
	// phase A materializes each (k−1)-prefix class's shared intersection
	// once in device scratch ((k−1) reads + 1 write per word per class),
	// phase B counts each candidate as popcount(class ∧ last) (2 reads
	// per word) — against the complete kernel's k reads per word per
	// candidate. Classes where the saving is non-positive (m·(k−2) ≤ k
	// for class size m), generations with k < 3, and chunks that do not
	// fit the scratch budget fall back to complete intersection, so the
	// variant is never slower under the timing model and always
	// bit-identical.
	PrefixCache bool
	// PrefixScratchWords caps the device scratch used for materialized
	// class vectors, in 32-bit words (0 = whatever free device memory
	// allows). Classes are chunked to fit; a budget too small for a
	// single class falls back to complete intersection.
	PrefixScratchWords int
}

// DefaultOptions returns the paper's tuned configuration: 256-thread
// blocks, candidate preloading, 4× unrolling.
func DefaultOptions() Options { return Options{BlockSize: 256, Preload: true, Unroll: 4} }

func (o Options) normalize(dev *gpusim.Device) Options {
	if o.BlockSize <= 0 {
		o.BlockSize = 256
	}
	if max := dev.Config().MaxThreadsPerBlock; o.BlockSize > max {
		o.BlockSize = max
	}
	// The tree reduction requires a power-of-two block.
	if o.BlockSize&(o.BlockSize-1) != 0 {
		p := 1
		for p*2 <= o.BlockSize {
			p *= 2
		}
		o.BlockSize = p
	}
	if o.Unroll <= 0 {
		o.Unroll = 1
	}
	return o
}

// SupportCounts computes the support of every candidate itemset with one
// kernel launch: one thread block per candidate (Figure 5). Candidates
// are uploaded (host→device), the kernel runs complete intersection, and
// the support array is copied back (device→host) — the per-generation
// traffic the complete-intersection design minimizes.
//
// All candidates in a call must have the same length k (one Apriori
// generation). Item ids must be < NumItems.
func (d *DeviceDB) SupportCounts(cands [][]dataset.Item, opt Options) ([]int, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	opt = opt.normalize(d.dev)
	k := len(cands[0])
	if k == 0 {
		return nil, fmt.Errorf("kernels: empty candidate")
	}
	for i, c := range cands {
		if len(c) != k {
			return nil, fmt.Errorf("kernels: candidate %d has length %d, want %d (one generation per launch)", i, len(c), k)
		}
		for _, item := range c {
			if int(item) >= d.numItems {
				return nil, fmt.Errorf("kernels: candidate %d references item %d outside device DB (%d items)", i, item, d.numItems)
			}
		}
	}
	if opt.PrefixCache && k >= 3 {
		return d.supportCountsPrefix(cands, k, opt)
	}
	return d.supportCountsComplete(cands, k, opt)
}

// supportCountsComplete is the paper's one-block-per-candidate complete
// intersection (Figure 5) over pre-validated candidates.
func (d *DeviceDB) supportCountsComplete(cands [][]dataset.Item, k int, opt Options) ([]int, error) {
	flat := make([]uint32, 0, len(cands)*k)
	for _, c := range cands {
		for _, item := range c {
			flat = append(flat, uint32(item))
		}
	}

	candBuf, err := d.dev.Malloc(len(flat))
	if err != nil {
		return nil, fmt.Errorf("kernels: candidate upload: %w", err)
	}
	outBuf, err := d.dev.Malloc(len(cands))
	if err != nil {
		return nil, fmt.Errorf("kernels: support buffer: %w", err)
	}
	// Scratch allocations are released after the launch; the vectors stay.
	defer d.dev.FreeAllAbove(d.vectors)

	if err := d.dev.TryCopyToDevice(candBuf, flat); err != nil {
		return nil, fmt.Errorf("kernels: candidate upload: %w", err)
	}

	sharedWords := opt.BlockSize
	if opt.Preload {
		sharedWords += k
	}
	cfg := gpusim.LaunchConfig{Grid: len(cands), Block: opt.BlockSize, SharedWords: sharedWords}
	words := d.wordsPerVec
	vectors := d.vectors

	_, lerr := d.dev.TryLaunch(cfg, func(ctx *gpusim.Ctx) {
		cand := ctx.BlockIdx
		tid := ctx.ThreadIdx
		candShared := opt.BlockSize // candidate ids live after the sums

		// Section IV.3 (1): candidate preloading. The first k threads
		// fetch the candidate's item ids once; everyone else waits.
		if opt.Preload {
			if tid < k {
				ctx.StoreShared(candShared+tid, ctx.LoadGlobal(candBuf, cand*k+tid))
			}
			ctx.SyncThreads()
		}

		itemAt := func(j int) int {
			if opt.Preload {
				return int(ctx.LoadShared(candShared + j))
			}
			return int(ctx.LoadGlobal(candBuf, cand*k+j))
		}

		// Word loop: thread t handles words t, t+blockDim, ... so a
		// half-warp touches 16 consecutive words — one 64-byte segment.
		sum := uint32(0)
		steps := 0
		for w := tid; w < words; w += ctx.BlockDim {
			acc := ctx.LoadGlobal(vectors, itemAt(0)*words+w)
			for j := 1; j < k; j++ {
				acc &= ctx.LoadGlobal(vectors, itemAt(j)*words+w)
			}
			ctx.Compute(k - 1) // the AND chain
			sum += ctx.Popc(acc)
			steps++
		}
		// Loop bookkeeping: one compare+increment per iteration, divided
		// by the manual unroll factor (Section IV.3 (2)).
		ctx.Compute((steps + opt.Unroll - 1) / opt.Unroll)

		// Parallel tree reduction of the per-thread counts (Figure 5).
		ctx.StoreShared(tid, sum)
		ctx.SyncThreads()
		for stride := ctx.BlockDim / 2; stride > 0; stride /= 2 {
			if tid < stride {
				ctx.StoreShared(tid, ctx.LoadShared(tid)+ctx.LoadShared(tid+stride))
			}
			ctx.SyncThreads()
		}
		if tid == 0 {
			ctx.StoreGlobal(outBuf, cand, ctx.LoadShared(0))
		}
	}, opt.DeadlineSec)
	if lerr != nil {
		return nil, fmt.Errorf("kernels: support-count launch: %w", lerr)
	}

	out32 := make([]uint32, len(cands))
	if err := d.dev.TryCopyFromDevice(out32, outBuf); err != nil {
		return nil, fmt.Errorf("kernels: support download: %w", err)
	}
	out := make([]int, len(cands))
	for i, v := range out32 {
		out[i] = int(v)
	}
	return out, nil
}
