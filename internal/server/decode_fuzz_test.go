package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzDecodeMineRequest holds the request decoder to its contract over
// arbitrary input: it never panics, and every input either decodes to a
// request that passes validation or comes back as a typed 400 — so no
// malformed or absurd request can ever reach the job manager.
func FuzzDecodeMineRequest(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"dataset":"q","min_support":5}`,
		`{"dataset":"q","relative_support":0.5}`,
		`{"dataset":"q","min_support":5,"algorithm":"eclat","max_len":3}`,
		`{"dataset":"q","min_support":-99999999999999999999}`,
		`{"dataset":"q","relative_support":1e308}`,
		`{"dataset":"q","min_support":5,"deadline_sec":-1}`,
		`{"dataset":"q","min_support":5,"priority":2147483647}`,
		`{"dataset":"q","min_support":5,"faults":"dev0:hang=@gen1"}`,
		`{"dataset":"q","min_support":5,"workers":1e9}`,
		"{\"dataset\":\"\u0001\",\"min_support\":5}",
		`{"dataset":"q","min_support":5}trailing`,
		`[{"dataset":"q"}]`,
		`"just a string"`,
		`{"dataset":"q","min_support":5,"unknown_field":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, se := DecodeMineRequest(bytes.NewReader(data))
		if se != nil {
			if req != nil {
				t.Fatal("rejected input must not also return a request")
			}
			if se.Status != http.StatusBadRequest {
				t.Fatalf("decoder error status %d, want 400", se.Status)
			}
			if se.Code != "bad_request" || se.Message == "" {
				t.Fatalf("decoder error must be typed bad_request with a message, got %+v", se)
			}
			return
		}
		if req == nil {
			t.Fatal("nil request without an error")
		}
		// An accepted request must be internally valid: re-validation
		// cannot fail, and the fields the scheduler consumes are in
		// range.
		if se := ValidateMineRequest(req); se != nil {
			t.Fatalf("accepted request fails re-validation: %v", se)
		}
		if req.Dataset == "" || req.MinSupport < 0 || req.DeadlineSec < 0 {
			t.Fatalf("accepted request out of range: %+v", req)
		}
	})
}

// FuzzDecodeMineRequestBounded runs the decoder the way the submit
// handler actually runs it — behind http.MaxBytesReader — and holds the
// overload contract over arbitrary input: never a panic, every
// rejection is either the typed 400 or the typed 413, and inputs that
// fit under the limit can never be refused for size.
func FuzzDecodeMineRequestBounded(f *testing.F) {
	seeds := [][]byte{
		[]byte(``),
		[]byte(`{"dataset":"q","min_support":5}`),
		[]byte(`{"dataset":"` + strings.Repeat("a", 512) + `","min_support":5}`),
		bytes.Repeat([]byte(`x`), 1024),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 256
		rec := httptest.NewRecorder()
		body := http.MaxBytesReader(rec, io.NopCloser(bytes.NewReader(data)), limit)
		req, se := DecodeMineRequest(body)
		if se == nil {
			if req == nil {
				t.Fatal("nil request without an error")
			}
			return
		}
		if req != nil {
			t.Fatal("rejected input must not also return a request")
		}
		switch se.Status {
		case http.StatusBadRequest:
			if se.Code != "bad_request" {
				t.Fatalf("400 with code %q, want bad_request", se.Code)
			}
		case http.StatusRequestEntityTooLarge:
			if se.Code != "body_too_large" {
				t.Fatalf("413 with code %q, want body_too_large", se.Code)
			}
			if len(data) <= limit {
				t.Fatalf("413 for a %d-byte body under the %d-byte limit", len(data), limit)
			}
		default:
			t.Fatalf("decoder error status %d, want 400 or 413", se.Status)
		}
	})
}
