// gpalint is the project's invariant linter: a multichecker running the
// internal/analysis suite (determinism, maporder, faultpath, ctxthread,
// typederr, lockhold, goroleak, atomicmix, ...) over the module's
// packages. It is wired into scripts/verify.sh and CI; a non-empty
// finding list is a build failure.
//
// Usage:
//
//	go run ./cmd/gpalint ./...
//	go run ./cmd/gpalint -only determinism,maporder ./internal/core
//	go run ./cmd/gpalint -json ./... | jq .count
//	go run ./cmd/gpalint -ignores ./...
//
// -json switches stdout to a machine-readable document (stable field
// order, valid even with zero findings). -ignores audits suppression
// directives instead of running analyzers: every //gpalint:ignore and
// //gpalint:orderok in the matched packages is listed, and a directive
// with no reason — or an ignore naming an analyzer that does not exist
// — is a failure, so suppressions cannot rot silently.
//
// Exit status: 0 clean, 1 findings (or directive violations), 2 usage
// or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gpapriori/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// directive is the JSON shape of one audited suppression.
type directive struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Kind     string `json:"kind"`
	Analyzer string `json:"analyzer,omitempty"`
	Reason   string `json:"reason"`
	Problem  string `json:"problem,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON on stdout")
	ignores := fs.Bool("ignores", false, "audit //gpalint directives instead of running analyzers")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: gpalint [-only a,b] [-root dir] [-json] [-ignores] packages...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "gpalint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "gpalint: %v\n", err)
			return 2
		}
		dir, err = findModuleRoot(wd)
		if err != nil {
			fmt.Fprintf(stderr, "gpalint: %v\n", err)
			return 2
		}
	}

	loader, err := analysis.NewLoader(dir)
	if err != nil {
		fmt.Fprintf(stderr, "gpalint: %v\n", err)
		return 2
	}
	paths, err := loader.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "gpalint: %v\n", err)
		return 2
	}

	if *ignores {
		return auditIgnores(loader, paths, dir, *jsonOut, stdout, stderr)
	}

	var findings []finding
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "gpalint: %v\n", err)
			return 2
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "gpalint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     relTo(dir, pos.Filename),
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}

	if *jsonOut {
		writeJSON(stdout, stderr, map[string]any{
			"findings": nonNil(findings),
			"count":    len(findings),
		})
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "gpalint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// auditIgnores lists every suppression directive in the matched
// packages and fails when one is missing its reason or names an
// unknown analyzer.
func auditIgnores(loader *analysis.Loader, paths []string, dir string, jsonOut bool, stdout, stderr io.Writer) int {
	var out []directive
	bad := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(stderr, "gpalint: %v\n", err)
			return 2
		}
		for _, d := range analysis.Directives(pkg.Fset, pkg.Files) {
			rec := directive{
				File:     relTo(dir, d.File),
				Line:     d.Line,
				Kind:     d.Kind,
				Analyzer: d.Analyzer,
				Reason:   d.Reason,
			}
			switch {
			case d.Kind == "ignore" && d.Analyzer != "*" && analysis.ByName(d.Analyzer) == nil:
				rec.Problem = "unknown analyzer"
			case d.Reason == "":
				rec.Problem = "missing reason"
			}
			if rec.Problem != "" {
				bad++
			}
			out = append(out, rec)
		}
	}
	if jsonOut {
		writeJSON(stdout, stderr, map[string]any{
			"directives": nonNil(out),
			"count":      len(out),
			"violations": bad,
		})
	} else {
		for _, d := range out {
			target := d.Kind
			if d.Analyzer != "" {
				target += " " + d.Analyzer
			}
			line := fmt.Sprintf("%s:%d: %s: %s", d.File, d.Line, target, d.Reason)
			if d.Problem != "" {
				line += " [" + d.Problem + "]"
			}
			fmt.Fprintln(stdout, line)
		}
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "gpalint: %d directive violation(s): every //gpalint suppression must name a real analyzer and state its reason\n", bad)
		return 1
	}
	return 0
}

// nonNil keeps empty slices as [] (not null) in the JSON document.
func nonNil[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}

func writeJSON(stdout, stderr io.Writer, doc any) {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "gpalint: encoding output: %v\n", err)
	}
}

func relTo(dir, file string) string {
	rel, err := filepath.Rel(dir, file)
	if err != nil {
		return file
	}
	return rel
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
