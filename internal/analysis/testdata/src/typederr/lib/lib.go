// Hit and non-hit cases for typederr.
package lib

import (
	"errors"
	"fmt"
	"strings"
)

// ErrCorrupt mirrors the repo's sentinel-error contracts.
var ErrCorrupt = errors.New("lib: corrupt")

// RowError mirrors the repo's typed errors implementing the errors.Is
// protocol.
type RowError struct{ Line int }

func (e *RowError) Error() string { return fmt.Sprintf("lib: row %d", e.Line) }

// Is implements the errors.Is protocol; identity comparison against
// the sentinel is the documented way to write it and is exempt.
func (e *RowError) Is(target error) bool { return target == ErrCorrupt }

func identityCompare(err error) bool {
	return err == ErrCorrupt // want `error compared with ==: use errors.Is`
}

func identityNotEqual(err error) bool {
	if err != ErrCorrupt { // want `error compared with !=: use errors.Is`
		return false
	}
	return true
}

// nilChecks are ordinary control flow, never flagged.
func nilChecks(err error) bool { return err == nil || nil != err }

func sanctionedIs(err error) bool { return errors.Is(err, ErrCorrupt) }

func substringMatch(err error) bool {
	return strings.Contains(err.Error(), "corrupt") // want `strings.Contains over err.Error\(\) text`
}

func prefixMatch(err error) bool {
	return strings.HasPrefix(err.Error(), "lib:") // want `strings.HasPrefix over err.Error\(\) text`
}

// substringOnPlainStrings is fine — only Error() text is protected.
func substringOnPlainStrings(s string) bool { return strings.Contains(s, "corrupt") }

func wrapWithoutVerb(err error) error {
	return fmt.Errorf("loading: %v", err) // want `fmt.Errorf formats an error without %w`
}

func wrapProperly(err error) error {
	return fmt.Errorf("loading: %w", err)
}

// formatNonError has no error argument; %v is fine.
func formatNonError(n int) error { return fmt.Errorf("bad count: %v", n) }
