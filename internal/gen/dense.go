package gen

import (
	"math/rand"

	"gpapriori/internal/dataset"
)

// AttributeValueConfig parameterizes the dense attribute–value generator
// used for the chess and pumsb stand-ins. A row has exactly one value per
// attribute (so every transaction has length NumAttrs), mirroring how the
// UCI/PUMSB files are integer-encoded.
//
// Two mechanisms shape the distribution:
//
//   - The first ConformAttrs attributes are "conforming": each row draws a
//     conformity λ ~ U[ConformMin,1] once, then each conforming attribute
//     takes its modal value with probability λ. Because λ is shared within
//     a row, modal values co-occur — rows that conform, conform broadly —
//     which is what gives the real datasets their deep frequent itemsets
//     at high support.
//   - Remaining attributes draw values from a truncated geometric with
//     continuation probability Skew (value 0 has probability ≈ 1−Skew),
//     supplying the long tail of moderately frequent items.
type AttributeValueConfig struct {
	NumAttrs     int     // attributes per row == transaction length
	ValuesPer    []int   // number of distinct values for each attribute
	Skew         float64 // geometric continuation prob in (0,1) for tail attrs
	ConformAttrs int     // leading attributes tied to per-row conformity
	ConformMin   float64 // lower bound of the per-row conformity draw
	NumTrans     int
	Seed         int64
}

// Chess returns the configuration matched to Table 2's chess dataset:
// 75 items, (exact) transaction length 37, 3,196 rows, with 12 conforming
// attributes so that support sweeps in the 70–90% range produce the deep,
// fast-growing pattern sets the real chess file is known for.
func Chess() AttributeValueConfig {
	values := make([]int, 37)
	for i := range values {
		values[i] = 2
	}
	// 37×2 = 74; give the last attribute a third value to reach 75 items.
	values[36] = 3
	return AttributeValueConfig{
		NumAttrs:     37,
		ValuesPer:    values,
		Skew:         0.5,
		ConformAttrs: 12,
		ConformMin:   0.9,
		NumTrans:     3196,
		Seed:         3196,
	}
}

// Pumsb returns the configuration matched to Table 2's pumsb dataset:
// 2,113 items, length 74, 49,046 rows; census fields range from binary
// flags to hundreds of codes, and high-support mining only makes sense in
// the 85–95% band, as in the paper's Figure 6(b).
func Pumsb() AttributeValueConfig {
	values := make([]int, 74)
	// A few wide attributes carry most of the vocabulary; the remainder
	// are small categorical fields. Totals sum to exactly 2113.
	total := 0
	for i := range values {
		switch {
		case i < 4:
			values[i] = 200
		case i < 10:
			values[i] = 100
		case i < 30:
			values[i] = 20
		default:
			values[i] = 7
		}
		total += values[i]
	}
	// total = 4*200 + 6*100 + 20*20 + 44*7 = 2108.
	for i := 0; total < 2113; i++ {
		values[i]++
		total++
	}
	return AttributeValueConfig{
		NumAttrs:     74,
		ValuesPer:    values,
		Skew:         0.55,
		ConformAttrs: 10,
		ConformMin:   0.93,
		NumTrans:     49046,
		Seed:         49046,
	}
}

// AttributeValue runs the dense generator. Item ids are assigned
// contiguously attribute by attribute, so attribute a's values occupy a
// dedicated id range.
func AttributeValue(cfg AttributeValueConfig) *dataset.DB {
	if cfg.NumAttrs <= 0 || len(cfg.ValuesPer) != cfg.NumAttrs {
		panic("gen: AttributeValue config needs ValuesPer entry per attribute")
	}
	if cfg.Skew <= 0 || cfg.Skew >= 1 {
		panic("gen: AttributeValue skew must be in (0,1)")
	}
	if cfg.ConformAttrs < 0 || cfg.ConformAttrs > cfg.NumAttrs {
		panic("gen: ConformAttrs out of range")
	}
	if cfg.ConformAttrs > 0 && (cfg.ConformMin <= 0 || cfg.ConformMin >= 1) {
		panic("gen: ConformMin must be in (0,1)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Precompute the base item id of each attribute.
	base := make([]dataset.Item, cfg.NumAttrs)
	next := dataset.Item(0)
	for a, v := range cfg.ValuesPer {
		if v <= 0 {
			panic("gen: attribute with no values")
		}
		base[a] = next
		next += dataset.Item(v)
	}
	db := dataset.New(nil)
	row := make([]dataset.Item, cfg.NumAttrs)
	for t := 0; t < cfg.NumTrans; t++ {
		lambda := cfg.ConformMin + (1-cfg.ConformMin)*rng.Float64()
		for a, v := range cfg.ValuesPer {
			var k int
			switch {
			case a < cfg.ConformAttrs && rng.Float64() < lambda:
				k = 0 // modal value, correlated across the row
			case a < cfg.ConformAttrs && v > 1:
				k = 1 + truncGeometric(rng, cfg.Skew, v-1)
			default:
				k = truncGeometric(rng, cfg.Skew, v)
			}
			row[a] = base[a] + dataset.Item(k)
		}
		db.Append(row)
	}
	return db
}

// truncGeometric draws from {0..n-1} with P(k) = (1−q)·q^k, the excess
// tail mass piled onto n−1: value 0 is the most popular, with probability
// ≈ 1−q.
func truncGeometric(rng *rand.Rand, q float64, n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for k < n-1 && rng.Float64() < q {
		k++
	}
	return k
}

// MixedConfig parameterizes the accidents stand-in: a core of
// near-universal items (the traffic data's "an accident happened on a
// road" style fields) plus a long tail of circumstance codes. Core items
// share a per-row conformity draw, like the attribute–value generator, so
// high-support mining finds deep core patterns; tail items are independent
// Bernoullis with geometrically decaying presence probability, capped at
// TailMax so the tail cannot join the high-support pattern core (which
// would blow up the frequent-itemset count combinatorially).
type MixedConfig struct {
	NumItems   int     // total item universe
	CoreItems  int     // near-universal, conformity-correlated items
	ConformMin float64 // lower bound of the per-row conformity draw
	TailMax    float64 // presence probability of the most frequent tail item
	TailDecay  float64 // geometric decay of tail presence probabilities
	NumTrans   int
	Seed       int64
}

// Accidents returns the configuration matched to Table 2's accidents
// dataset: 468 items, average length ≈34, 340,183 transactions. Twelve
// conforming core items contribute ≈11 items per row and the tail
// (0.45·0.9795^i presence) another ≈22, averaging ≈33–34; the 35–60%
// support band of Figure 6(d) then yields a moderate, fast-growing
// pattern population.
func Accidents() MixedConfig {
	return MixedConfig{
		NumItems:   468,
		CoreItems:  12,
		ConformMin: 0.85,
		TailMax:    0.45,
		TailDecay:  0.9795,
		NumTrans:   340183,
		Seed:       340183,
	}
}

// Mixed runs the mixed-density generator.
func Mixed(cfg MixedConfig) *dataset.DB {
	if cfg.CoreItems > cfg.NumItems {
		panic("gen: Mixed CoreItems exceeds NumItems")
	}
	if cfg.CoreItems > 0 && (cfg.ConformMin <= 0 || cfg.ConformMin >= 1) {
		panic("gen: ConformMin must be in (0,1)")
	}
	tail := cfg.NumItems - cfg.CoreItems
	if tail > 0 && (cfg.TailMax < 0 || cfg.TailMax >= 1 || cfg.TailDecay <= 0 || cfg.TailDecay >= 1) {
		panic("gen: TailMax must be in [0,1) and TailDecay in (0,1)")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Precompute tail presence probabilities.
	tailProb := make([]float64, tail)
	p := cfg.TailMax
	for i := range tailProb {
		tailProb[i] = p
		p *= cfg.TailDecay
	}
	db := dataset.New(nil)
	row := make([]dataset.Item, 0, cfg.NumItems)
	for t := 0; t < cfg.NumTrans; t++ {
		row = row[:0]
		lambda := cfg.ConformMin + (1-cfg.ConformMin)*rng.Float64()
		for i := 0; i < cfg.CoreItems; i++ {
			if rng.Float64() < lambda {
				row = append(row, dataset.Item(i))
			}
		}
		for i, q := range tailProb {
			if rng.Float64() < q {
				row = append(row, dataset.Item(cfg.CoreItems+i))
			}
		}
		if len(row) > 0 {
			db.Append(row)
		}
	}
	return db
}
