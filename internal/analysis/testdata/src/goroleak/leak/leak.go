// Failing cases for goroleak: go statements whose goroutine has no
// termination path — no reachable return or break, or a call into a
// function that never returns.
package leak

var ch = make(chan int)

// spinForever has an unconditional loop with no exit edge.
func spinForever() {
	for {
		process(<-ch)
	}
}

func spawnNamed() {
	go spinForever() // want `goroutine has no termination path: spinForever never returns`
}

func spawnLitLoop() {
	go func() { // want `goroutine has no termination path`
		for {
			process(<-ch)
		}
	}()
}

func spawnEmptySelect() {
	go func() { // want `goroutine has no termination path`
		select {}
	}()
}

// spawnWrapped: the literal terminates syntactically, but its single
// call never returns — the wrapper idiom.
func spawnWrapped() {
	go func() { // want `goroutine has no termination path: it calls spinForever, which never returns`
		spinForever()
	}()
}

// spawnNested: the break leaves the inner loop only; the outer loop
// still has no exit.
func spawnNested() {
	go func() { // want `goroutine has no termination path`
		for {
			for {
				if len(ch) == 0 {
					break
				}
			}
		}
	}()
}

func process(int) {}
