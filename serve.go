// The serving surface shared by the gpaserve daemon and its clients.
//
// gpaserve (internal/server + cmd/gpaserve) keeps named databases
// resident in their vertical layout and mines them many times, the way
// an inference server keeps a loaded model hot. This file defines the
// wire contract — request, job, stream-event, stats, and error shapes —
// and a client, so the daemon and the CLI's -serve-url mode speak one
// vocabulary. The server half lives in internal/server; it imports
// these types rather than redeclaring them.
package gpapriori

import (
	"bufio"
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpapriori/internal/dataset"
	"gpapriori/internal/resultio"
)

// ServeMineRequest is the body of POST /v1/jobs: one mining query
// against a registered dataset. Exactly one of MinSupport ≥ 1 or
// RelativeSupport in (0,1] must be set.
type ServeMineRequest struct {
	// Dataset names a database in the daemon's registry.
	Dataset string `json:"dataset"`
	// Algorithm defaults to AlgoGPApriori.
	Algorithm string `json:"algorithm,omitempty"`
	// MinSupport is the absolute threshold (0 = use RelativeSupport).
	MinSupport int `json:"min_support,omitempty"`
	// RelativeSupport is the threshold as a ratio in (0,1].
	RelativeSupport float64 `json:"relative_support,omitempty"`
	// MaxLen bounds itemset length (0 = unbounded).
	MaxLen int `json:"max_len,omitempty"`
	// Priority orders admission (higher first) and shedding (lower
	// first).
	Priority int `json:"priority,omitempty"`
	// DeadlineSec bounds the job's run time (0 = none).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// Workers, Devices, HybridCPUShare mirror Config.
	Workers        int     `json:"workers,omitempty"`
	Devices        int     `json:"devices,omitempty"`
	HybridCPUShare float64 `json:"hybrid_cpu_share,omitempty"`
	// PrefixCache / PrefixCacheBudgetMB mirror Config.
	PrefixCache         bool `json:"prefix_cache,omitempty"`
	PrefixCacheBudgetMB int  `json:"prefix_cache_budget_mb,omitempty"`
	// PipelineGrain / PipelineStealBatch mirror Config (pipeline only).
	PipelineGrain      int `json:"pipeline_grain,omitempty"`
	PipelineStealBatch int `json:"pipeline_steal_batch,omitempty"`
	// Faults / FaultSeed inject a deterministic device-fault schedule
	// (see Config.Faults).
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// NoCache bypasses the daemon's result cache for this request (the
	// run still populates it).
	NoCache bool `json:"no_cache,omitempty"`
}

// MiningConfig maps the request onto a Config. The daemon applies its
// own checkpoint/streaming wiring on top.
func (r ServeMineRequest) MiningConfig() Config {
	return Config{
		Algorithm:           Algorithm(r.Algorithm),
		MinSupport:          r.MinSupport,
		RelativeSupport:     r.RelativeSupport,
		MaxLen:              r.MaxLen,
		Workers:             r.Workers,
		Devices:             r.Devices,
		HybridCPUShare:      r.HybridCPUShare,
		PrefixCache:         r.PrefixCache,
		PrefixCacheBudgetMB: r.PrefixCacheBudgetMB,
		PipelineGrain:       r.PipelineGrain,
		PipelineStealBatch:  r.PipelineStealBatch,
		Faults:              r.Faults,
		FaultSeed:           r.FaultSeed,
	}
}

// ServeJobInfo is one job's externally visible state, returned by
// submit, status, cancel, and the final stream event.
type ServeJobInfo struct {
	// ID addresses the job in the /v1/jobs endpoints.
	ID string `json:"id"`
	// Dataset and Algorithm echo the request (Algorithm resolved).
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	// State is the lifecycle state string (see JobState): queued,
	// admitted, running, checkpointed, done, failed, shed, canceled.
	State string `json:"state"`
	// Cached marks a job answered from the result cache without mining.
	Cached bool `json:"cached,omitempty"`
	// MinSupport is the resolved absolute threshold.
	MinSupport int `json:"min_support,omitempty"`
	// Transactions is the dataset's transaction count (for clients that
	// never see the database).
	Transactions int `json:"transactions,omitempty"`
	// Itemsets counts the frequent itemsets of a done job.
	Itemsets int `json:"itemsets,omitempty"`
	// Error is the terminal error of a failed/shed/canceled job.
	Error string `json:"error,omitempty"`
	// Degraded marks a job whose durability writes failed mid-run: it
	// kept (or keeps) mining, but has no crash-safety net.
	Degraded bool `json:"degraded,omitempty"`
	// Requeued marks the terminal event of a job the daemon canceled
	// during drain after journaling it for restart: the job is not
	// really over, and a resilient client reconnects instead of
	// reporting the cancellation.
	Requeued bool `json:"requeued,omitempty"`
	// HostSeconds / DeviceSeconds are the run's timings (zero when
	// Cached).
	HostSeconds   float64 `json:"host_seconds,omitempty"`
	DeviceSeconds float64 `json:"device_seconds,omitempty"`
	// Faults reports injected-fault activity of the run, if any.
	Faults *FaultStats `json:"fault_stats,omitempty"`
	// Forwarded names the peer that actually executed a job this node
	// proxied to a cluster owner (empty for locally mined jobs). The
	// submitting client needs no awareness of it — results stream back
	// through the node it talked to — but it makes placement auditable.
	Forwarded string `json:"forwarded,omitempty"`
}

// Terminal reports whether the job has reached a terminal state.
func (i *ServeJobInfo) Terminal() bool {
	switch i.State {
	case JobDone.String(), JobFailed.String(), JobShed.String(), JobCanceled.String():
		return true
	}
	return false
}

// ServeGenerationEvent is one line of the NDJSON stream of
// GET /v1/jobs/{id}/stream. Non-final events carry the itemsets newly
// completed since the previous event (for a level-wise run: one
// generation, announced only after its checkpoint is durable). The
// final event carries any remainder plus the terminal job info.
type ServeGenerationEvent struct {
	// Gen is the itemset length just counted (0 on events that are not
	// tied to a generation boundary).
	Gen int `json:"gen,omitempty"`
	// Itemsets are the newly completed frequent itemsets.
	Itemsets []Itemset `json:"itemsets,omitempty"`
	// Final marks the last event of the stream.
	Final bool `json:"final,omitempty"`
	// Job is the terminal job info, set on the final event.
	Job *ServeJobInfo `json:"job,omitempty"`
}

// ServeCacheStats is the result cache's hit/miss/eviction accounting.
type ServeCacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// ServeDatasetInfo describes one registered dataset.
type ServeDatasetInfo struct {
	Name         string  `json:"name"`
	Transactions int     `json:"transactions"`
	NumItems     int     `json:"num_items"`
	AvgLength    float64 `json:"avg_length"`
	// BitsetBytes is the modeled footprint of the resident vertical
	// bitset layout.
	BitsetBytes int64 `json:"bitset_bytes"`
}

// ServeStats is the body of GET /statsz.
type ServeStats struct {
	// Draining is true once shutdown has begun (no new admissions).
	Draining bool `json:"draining"`
	// QueueLen and InFlightBytes mirror the admission controller.
	QueueLen      int   `json:"queue_len"`
	InFlightBytes int64 `json:"in_flight_bytes"`
	// Jobs is the lifecycle counter snapshot, including jobs answered
	// from the cache (counted as Submitted and Done).
	Jobs JobCounters `json:"jobs"`
	// Cache is the result cache's accounting.
	Cache ServeCacheStats `json:"cache"`
	// Faults aggregates fault stats across every completed run.
	Faults FaultStats `json:"faults"`
	// Durability is the disk-resilience accounting.
	Durability ServeDurabilityStats `json:"durability"`
	// Overload is the overload-control accounting: the admission
	// controller's sojourn/AIMD state plus the transport's
	// slow-client and body-limit defenses.
	Overload ServeOverloadStats `json:"overload"`
	// Datasets lists the registry.
	Datasets []ServeDatasetInfo `json:"datasets"`
	// Cluster is the multi-node section: membership, probe state,
	// placement, and forwarding/cache-peer counters. Nil on a
	// single-node daemon.
	Cluster *ServeClusterStats `json:"cluster,omitempty"`
}

// ServeClusterStats is the /statsz cluster section of a multi-node
// daemon.
type ServeClusterStats struct {
	// Self is this node's advertised URL; Replication is how many
	// distinct peers own each dataset.
	Self        string `json:"self"`
	Replication int    `json:"replication"`
	// Peers is every member's probe state as seen from this node.
	Peers []ServePeerStatus `json:"peers"`
	// OwnedDatasets are the registered datasets whose static owner set
	// includes this node.
	OwnedDatasets []string `json:"owned_datasets"`
	// Placement maps every registered dataset to its static owner URLs
	// in ring order (first entry = primary). All nodes agree on it;
	// scripts use it to find a non-owner to submit through.
	Placement map[string][]string `json:"placement"`
	// ForwardedJobs counts submissions proxied to a remote owner;
	// ForwardFailovers counts mid-job switches to another owner after
	// the current one failed; ForwardedDone/Failed split the outcomes.
	ForwardedJobs    int64 `json:"forwarded_jobs"`
	ForwardFailovers int64 `json:"forward_failovers"`
	ForwardedDone    int64 `json:"forwarded_done"`
	ForwardedFailed  int64 `json:"forwarded_failed"`
	// CachePeerHits/Misses count this node's lookups into other
	// owners' result caches before recomputing; ReplicasInstalled
	// counts bodies fetched that way and installed locally;
	// CachePeerServed counts /v1/cache hits served to other nodes.
	CachePeerHits          int64 `json:"cache_peer_hits"`
	CachePeerMisses        int64 `json:"cache_peer_misses"`
	CacheReplicasInstalled int64 `json:"cache_replicas_installed"`
	CachePeerServed        int64 `json:"cache_peer_served"`
}

// ServePeerStatus is one peer's health as seen by the reporting node.
type ServePeerStatus struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// State is "alive" or "suspected" (probe failures past the
	// hysteresis threshold).
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	Probes              int64  `json:"probes,omitempty"`
	Failures            int64  `json:"failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
}

// ServeHealth is the body of GET /healthz. Status is "ok", "degraded"
// (a job lost its durability net, or a replica of a locally-owned
// dataset sits on a suspected peer), or "draining".
type ServeHealth struct {
	Status string `json:"status"`
	// Cluster is present on multi-node daemons.
	Cluster *ServeClusterHealth `json:"cluster,omitempty"`
}

// ServeClusterHealth is the cluster section of /healthz: just enough
// for a load balancer or probe to see membership health without the
// full /statsz payload.
type ServeClusterHealth struct {
	Self  string            `json:"self"`
	Peers []ServePeerStatus `json:"peers"`
	// DegradedDatasets lists locally-owned datasets with at least one
	// replica on a suspected peer — data that is one more failure away
	// from losing redundancy.
	DegradedDatasets []string `json:"degraded_datasets,omitempty"`
}

// ServeOverloadStats is the /statsz overload section: the admission
// controller's latency-aware state (embedded) plus the HTTP layer's
// own overload defenses.
type ServeOverloadStats struct {
	OverloadStats
	// StreamEvictions counts slow /stream subscribers evicted by a
	// write deadline; the evicted client reconnects with ?after_gen=N
	// and loses nothing.
	StreamEvictions int64 `json:"stream_evictions"`
	// BodyLimitRejections counts request bodies refused with a typed
	// 413 by http.MaxBytesReader.
	BodyLimitRejections int64 `json:"body_limit_rejections"`
	// HandlerTimeouts counts non-streaming handlers cut off by the
	// per-handler context deadline.
	HandlerTimeouts int64 `json:"handler_timeouts"`
}

// ServeDurabilityStats counts the daemon's encounters with a failing
// disk and with retried submissions — the observable half of the
// degraded-durability state machine (DESIGN.md §13).
type ServeDurabilityStats struct {
	// CheckpointErrors counts failed checkpoint saves that were
	// swallowed to keep the affected job mining (degraded).
	CheckpointErrors int64 `json:"checkpoint_errors"`
	// DegradedJobs counts jobs that ever entered the degraded state.
	DegradedJobs int64 `json:"degraded_jobs"`
	// JournalErrors counts drain-journal writes that failed; each one
	// comes with a loss report in the log.
	JournalErrors int64 `json:"journal_errors"`
	// LostJobs counts jobs whose resumable state was lost to a failed
	// drain journal.
	LostJobs int64 `json:"lost_jobs"`
	// JournalsQuarantined counts corrupt pending.json files moved aside
	// at startup.
	JournalsQuarantined int64 `json:"journals_quarantined"`
	// IdempotentHits counts submissions answered by an existing job via
	// Idempotency-Key dedup — retried submits that did not enqueue.
	IdempotentHits int64 `json:"idempotent_hits"`
}

// ServeError is the daemon's typed error body: {"code":…,"error":…}
// with the HTTP status attached client-side.
type ServeError struct {
	// Status is the HTTP status code (not serialized; the transport
	// carries it).
	Status int `json:"-"`
	// Code is a stable machine-readable discriminator: bad_request,
	// unknown_dataset, unknown_job, queue_full, over_budget, draining,
	// unsupported, conflict, internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"error"`

	// RetryAfter is the pacing hint attached to transient refusals
	// (0 = none). It rides the Retry-After header, not the JSON body:
	// the server derives it from the admission controller's measured
	// drain rate, and the client's retry loop honors it over its own
	// backoff.
	RetryAfter time.Duration `json:"-"`
}

func (e *ServeError) Error() string {
	return fmt.Sprintf("gpaserve: %s (%d %s)", e.Message, e.Status, e.Code)
}

// ErrStreamLost reports a generation stream that could not be
// (re-)established within the retry budget; match with errors.Is. The
// wrapped cause is the last underlying failure.
var ErrStreamLost = errors.New("gpapriori: generation stream lost")

// RetryPolicy makes a ServeClient survive transient failures:
// transport errors and retryable statuses (429, 502, 503, 504) are
// retried with exponential backoff and seeded jitter, so a daemon
// restart mid-request looks like latency, not an error. The zero value
// disables retries (single attempt), preserving fail-fast behavior.
//
// The schedule is fully deterministic for a fixed Seed and failure
// sequence: delays come from a seeded RNG, and sleeping goes through a
// seam tests can replace (like internal/clock for time reads), so
// retry tests run instantly and reproducibly.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation (≤1 = no retries). For
	// streams the counter resets whenever an event arrives, so a
	// long-lived stream is not starved of retries by earlier hiccups.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 = 5s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (0 = 2).
	Multiplier float64
	// Jitter in [0,1] spreads each delay uniformly over
	// [d·(1−Jitter/2), d·(1+Jitter/2)].
	Jitter float64
	// Seed drives the jitter RNG; equal seeds give equal schedules.
	Seed int64
	// AttemptTimeout bounds each individual attempt (0 = none). It does
	// not apply to streaming or long-poll calls, which legitimately
	// hold connections open.
	AttemptTimeout time.Duration
}

// enabled reports whether the policy actually retries.
func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// attempts is the per-operation try budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// ServeConfig configures a client of a running gpaserve daemon.
type ServeConfig struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient. Streaming and long-poll
	// calls hold connections open, so a client with a short Timeout
	// will break them; bound calls with contexts instead.
	HTTPClient *http.Client
	// PollWait is the long-poll window per status request (0 = 30s).
	PollWait time.Duration
	// Retry makes the client survive transient failures (zero value =
	// single attempt, fail fast).
	Retry RetryPolicy
	// Header, when non-nil, is merged into every request the client
	// sends. gpaserve's forwarding path uses it to mark proxied
	// submissions (ForwardedHeader) so a peer never re-forwards an
	// already-forwarded job.
	Header http.Header
}

// ServeClient talks to a gpaserve daemon. All methods thread their
// context into the underlying requests. With a RetryPolicy configured
// the client is resilient end to end: requests retry with backoff,
// submissions carry idempotency keys the daemon dedupes, streams
// reconnect and resume from the last generation seen, and a job id
// lost to a daemon restart is transparently resubmitted.
type ServeClient struct {
	base string
	http *http.Client
	wait time.Duration
	hdr  http.Header

	retry RetryPolicy
	// sleep is the backoff seam: tests replace it to run retry
	// schedules instantly while recording the requested delays.
	sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand // jitter source; seeded, so schedules reproduce
	// subs remembers how to resubmit each in-flight job (idempotency
	// key + request), keyed by job id. Entries are pruned when a job is
	// observed terminal.
	subs map[string]submission
}

// submission is what Wait/Stream need to transparently resubmit a job
// whose id a restarted daemon no longer knows.
type submission struct {
	req ServeMineRequest
	key string
}

// NewServeClient validates cfg and builds a client.
func NewServeClient(cfg ServeConfig) (*ServeClient, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("gpapriori: ServeConfig.BaseURL %q is not an absolute URL", cfg.BaseURL)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	wait := cfg.PollWait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	return &ServeClient{
		base:  strings.TrimSuffix(cfg.BaseURL, "/"),
		http:  hc,
		wait:  wait,
		hdr:   cfg.Header,
		retry: cfg.Retry,
		sleep: sleepContext,
		rng:   rand.New(rand.NewSource(cfg.Retry.Seed)),
		subs:  map[string]submission{},
	}, nil
}

// sleepContext is the production backoff sleep: a timer bounded by ctx.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryableError reports whether err is worth another attempt:
// transport failures (daemon restarting, connection reset) and the
// explicitly transient statuses. Typed 4xx application errors are
// final — retrying a bad request cannot fix it.
func retryableError(err error) bool {
	var se *ServeError
	if errors.As(err, &se) {
		switch se.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// backoff computes the jittered delay before retry number attempt
// (1-based), honoring a server-provided Retry-After when it is longer.
func (c *ServeClient) backoff(attempt int, cause error) time.Duration {
	p := c.retry
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 5 * time.Second
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if d >= float64(maxd) {
			break
		}
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	if p.Jitter > 0 {
		c.mu.Lock()
		u := c.rng.Float64()
		c.mu.Unlock()
		d *= 1 + p.Jitter*(u-0.5)
	}
	delay := time.Duration(d)
	var se *ServeError
	if errors.As(cause, &se) && se.RetryAfter > delay {
		delay = se.RetryAfter
	}
	return delay
}

// remember records how to resubmit job id; forget prunes it once the
// job is observed terminal.
func (c *ServeClient) remember(id string, req ServeMineRequest, key string) {
	c.mu.Lock()
	c.subs[id] = submission{req: req, key: key}
	c.mu.Unlock()
}

func (c *ServeClient) forget(id string) {
	c.mu.Lock()
	delete(c.subs, id)
	c.mu.Unlock()
}

func (c *ServeClient) lookupSubmission(id string) (submission, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub, ok := c.subs[id]
	return sub, ok
}

// newIdempotencyKey draws a fresh random key for one Submit call; the
// key is stable across that call's retries, which is what lets the
// daemon collapse them into one job.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand is documented never to fail on supported
		// platforms; keep the invariant loud.
		panic(fmt.Sprintf("gpapriori: idempotency key: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// do issues one logical request under the retry policy and decodes the
// JSON response into out (skipped when out is nil). Non-2xx responses
// come back as *ServeError. hdr, when non-nil, is merged into the
// request headers of every attempt — how idempotency keys stay stable
// across retries.
func (c *ServeClient) do(ctx context.Context, method, path string, body, out any, hdr http.Header) error {
	attempts := c.retry.attempts()
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out, hdr, true)
		if err == nil {
			return nil
		}
		if attempt >= attempts || !retryableError(err) || ctx.Err() != nil {
			return err
		}
		if serr := c.sleep(ctx, c.backoff(attempt, err)); serr != nil {
			return err
		}
	}
}

// doOnce issues exactly one attempt. timed applies the per-attempt
// timeout; streaming/long-poll callers pass false.
func (c *ServeClient) doOnce(ctx context.Context, method, path string, body, out any, hdr http.Header, timed bool) error {
	if timed && c.retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	applyHeader(req, c.hdr)
	applyHeader(req, hdr)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeServeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// applyHeader merges hdr into the request (per-key Set semantics, so
// later sources override earlier ones).
func applyHeader(req *http.Request, hdr http.Header) {
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Set(k, v)
		}
	}
}

// decodeServeError turns a non-2xx response into a *ServeError,
// capturing any Retry-After header for the retry loop.
func decodeServeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	se := &ServeError{Status: resp.StatusCode}
	if err := json.Unmarshal(data, se); err != nil || se.Message == "" {
		se.Code = "http_error"
		se.Message = strings.TrimSpace(string(data))
		if se.Message == "" {
			se.Message = resp.Status
		}
	}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec >= 0 {
			se.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	return se
}

// Health returns the daemon's health status string: "ok", "degraded"
// or "draining".
func (c *ServeClient) Health(ctx context.Context) (string, error) {
	h, err := c.HealthDetail(ctx)
	if err != nil {
		return "", err
	}
	return h.Status, nil
}

// HealthDetail returns the full /healthz body, including the cluster
// section of a multi-node daemon.
func (c *ServeClient) HealthDetail(ctx context.Context) (*ServeHealth, error) {
	out := &ServeHealth{}
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches the /statsz metrics snapshot.
func (c *ServeClient) Stats(ctx context.Context) (*ServeStats, error) {
	out := &ServeStats{}
	if err := c.do(ctx, http.MethodGet, "/statsz", nil, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Datasets lists the daemon's registered datasets.
func (c *ServeClient) Datasets(ctx context.Context) ([]ServeDatasetInfo, error) {
	var out []ServeDatasetInfo
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// idempotencyHeader carries the client-generated submission key the
// daemon dedupes on.
const idempotencyHeader = "Idempotency-Key"

// ForwardedHeader marks a submission proxied by a cluster peer. A
// daemon receiving it serves the job itself — even when placement says
// another node owns the dataset — so divergent health views can cost
// an extra hop but never a forwarding cycle.
const ForwardedHeader = "X-Gpapriori-Forwarded"

// Submit queues one mining request and returns the job handle. A
// result-cache hit comes back already terminal with Cached set. Every
// submission carries a fresh idempotency key, stable across the call's
// retries: a retried POST that double-delivers lands on the same job,
// never a second enqueue.
func (c *ServeClient) Submit(ctx context.Context, req ServeMineRequest) (*ServeJobInfo, error) {
	return c.submitKeyed(ctx, req, newIdempotencyKey())
}

// SubmitKeyed is Submit with a caller-chosen idempotency key. The
// cluster forwarding path derives the key from the forwarding node's
// own job id, so a failover that revisits an owner collapses onto the
// remote job the first visit created instead of enqueueing a second
// run.
func (c *ServeClient) SubmitKeyed(ctx context.Context, req ServeMineRequest, key string) (*ServeJobInfo, error) {
	return c.submitKeyed(ctx, req, key)
}

// submitKeyed is Submit with a caller-provided idempotency key — the
// resubmission path after a daemon restart reuses the original key.
func (c *ServeClient) submitKeyed(ctx context.Context, req ServeMineRequest, key string) (*ServeJobInfo, error) {
	out := &ServeJobInfo{}
	hdr := http.Header{}
	hdr.Set(idempotencyHeader, key)
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, out, hdr); err != nil {
		return nil, err
	}
	if out.Terminal() {
		return out, nil
	}
	c.remember(out.ID, req, key)
	return out, nil
}

// recoverUnknownJob handles a 404 for a job this client submitted: a
// restarted daemon (new state dir, or a lost drain journal) no longer
// knows the id, but the idempotency key and request are in hand, so
// the job is resubmitted transparently. Returns the replacement id.
func (c *ServeClient) recoverUnknownJob(ctx context.Context, id string, cause error) (string, bool) {
	var se *ServeError
	if !errors.As(cause, &se) || se.Status != http.StatusNotFound || se.Code != "unknown_job" {
		return "", false
	}
	sub, ok := c.lookupSubmission(id)
	if !ok {
		return "", false
	}
	c.forget(id)
	job, err := c.submitKeyed(ctx, sub.req, sub.key)
	if err != nil {
		return "", false
	}
	if job.Terminal() {
		// Already answered (result cache): no record to poll, but the
		// id resolves, so let the caller's next request find it.
		return job.ID, true
	}
	return job.ID, true
}

// Job fetches a job's current state without waiting.
func (c *ServeClient) Job(ctx context.Context, id string) (*ServeJobInfo, error) {
	out := &ServeJobInfo{}
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Wait long-polls the job until it reaches a terminal state or ctx is
// done. A post-restart 404 for a job this client submitted is not
// fatal: Wait resubmits under the original idempotency key and keeps
// waiting on the replacement job.
func (c *ServeClient) Wait(ctx context.Context, id string) (*ServeJobInfo, error) {
	for {
		path := fmt.Sprintf("/v1/jobs/%s?wait_sec=%d", url.PathEscape(id), int(c.wait.Seconds()))
		out := &ServeJobInfo{}
		if err := c.doPoll(ctx, path, out); err != nil {
			if newID, ok := c.recoverUnknownJob(ctx, id, err); ok {
				id = newID
				continue
			}
			return nil, err
		}
		if out.Terminal() {
			c.forget(id)
			return out, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// doPoll is the long-poll variant of do: retries apply, the per-attempt
// timeout does not (the request is designed to hold the connection).
func (c *ServeClient) doPoll(ctx context.Context, path string, out any) error {
	attempts := c.retry.attempts()
	for attempt := 1; ; attempt++ {
		err := c.doOnce(ctx, http.MethodGet, path, nil, out, nil, false)
		if err == nil {
			return nil
		}
		if attempt >= attempts || !retryableError(err) || ctx.Err() != nil {
			return err
		}
		if serr := c.sleep(ctx, c.backoff(attempt, err)); serr != nil {
			return err
		}
	}
}

// Cancel requests termination of a job and returns its state after the
// request.
func (c *ServeClient) Cancel(ctx context.Context, id string) (*ServeJobInfo, error) {
	out := &ServeJobInfo{}
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// CacheLookup fetches the daemon's cached canonical result body for a
// result fingerprint, or a typed 404 (code "cache_miss") when the key
// is not resident. It is a single attempt by design: the cluster's
// peer-consult path races recomputation, so a missing entry should be
// answered by mining, not by retrying the lookup.
func (c *ServeClient) CacheLookup(ctx context.Context, key uint64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/cache/%016x", c.base, key), nil)
	if err != nil {
		return nil, err
	}
	applyHeader(req, c.hdr)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeServeError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches a done job's full frequent-itemset result (the
// resultio-normalized canonical order).
func (c *ServeClient) Result(ctx context.Context, id string) ([]Itemset, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	applyHeader(req, c.hdr)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeServeError(resp)
	}
	rs, err := resultio.Read(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("gpapriori: parsing served result: %w", err)
	}
	return toItemsets(rs), nil
}

// callbackError marks an error raised by the caller's event callback:
// it aborts the stream and is never retried.
type callbackError struct{ err error }

func (e *callbackError) Error() string { return e.err.Error() }
func (e *callbackError) Unwrap() error { return e.err }

// errStreamRequeued marks a final event whose job the daemon canceled
// during drain after journaling it: the job resumes after restart, so
// the stream should reconnect, not report the cancellation.
var errStreamRequeued = errors.New("gpapriori: job requeued for daemon restart")

// Stream consumes the job's NDJSON generation stream, invoking fn for
// every event (including the final one), and returns the terminal job
// info. A nil fn just drains to the terminal event.
//
// With a RetryPolicy configured the stream survives daemon trouble: a
// dropped connection reconnects and resumes after the last generation
// seen (the server replays nothing already delivered), a drain-time
// requeue reconnects through the restart, and a post-restart 404
// resubmits under the original idempotency key. The attempt budget
// resets whenever an event arrives, so only consecutive failures
// exhaust it; exhaustion reports ErrStreamLost.
func (c *ServeClient) Stream(ctx context.Context, id string, fn func(ServeGenerationEvent) error) (*ServeJobInfo, error) {
	attempts := c.retry.attempts()
	lastGen := 0
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		final, progressed, err := c.streamOnce(ctx, id, &lastGen, fn)
		if err == nil {
			c.forget(id)
			return final, nil
		}
		var cb *callbackError
		if errors.As(err, &cb) {
			return nil, cb.err
		}
		if errors.Is(err, errStreamRequeued) {
			// Not a failure of this connection: reset the budget and
			// follow the job through the daemon's restart.
			attempt = 0
			err = fmt.Errorf("daemon draining: %w", err)
		} else if !retryableError(err) {
			if newID, ok := c.recoverUnknownJob(ctx, id, err); ok {
				// Same fingerprint, so generations already seen stay
				// valid: keep lastGen and stream the remainder.
				id = newID
				attempt = 0
			} else {
				return nil, err
			}
		} else if progressed {
			attempt = 0
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, fmt.Errorf("%w: job %s: %v", ErrStreamLost, id, lastErr)
		}
		if attempt < attempts {
			if serr := c.sleep(ctx, c.backoff(attempt+1, err)); serr != nil {
				return nil, fmt.Errorf("%w: job %s: %v", ErrStreamLost, id, lastErr)
			}
		}
	}
	return nil, fmt.Errorf("%w: job %s: %v", ErrStreamLost, id, lastErr)
}

// streamOnce runs one stream connection, updating *lastGen as
// generation events arrive so a reconnect can resume after them.
// progressed reports whether any event was delivered on this
// connection.
func (c *ServeClient) streamOnce(ctx context.Context, id string, lastGen *int, fn func(ServeGenerationEvent) error) (final *ServeJobInfo, progressed bool, err error) {
	path := c.base + "/v1/jobs/" + url.PathEscape(id) + "/stream"
	if *lastGen > 0 {
		path += "?after_gen=" + strconv.Itoa(*lastGen)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, false, err
	}
	applyHeader(req, c.hdr)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, false, decodeServeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev ServeGenerationEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, progressed, fmt.Errorf("gpapriori: bad stream event: %w", err)
		}
		if ev.Final && ev.Job != nil && ev.Job.Requeued {
			// The daemon drained this job into its journal; the "real"
			// final event comes from the restarted daemon.
			return nil, progressed, errStreamRequeued
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return nil, progressed, &callbackError{err: err}
			}
		}
		progressed = true
		if ev.Gen > *lastGen {
			*lastGen = ev.Gen
		}
		if ev.Final {
			final = ev.Job
		}
	}
	if err := sc.Err(); err != nil {
		return nil, progressed, err
	}
	if final == nil {
		return nil, progressed, fmt.Errorf("gpapriori: stream for job %s ended without a final event", id)
	}
	return final, progressed, nil
}

// Mine is the end-to-end client call: submit the request, consume the
// generation stream, and assemble the terminal job info plus the full
// result into the same *Result shape a local Mine returns. The itemsets
// are reassembled from the streamed events (canonically re-sorted), so
// a served run is byte-identical — after resultio normalization — to an
// offline one.
func (c *ServeClient) Mine(ctx context.Context, req ServeMineRequest) (*Result, *ServeJobInfo, error) {
	job, err := c.Submit(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	rs := &dataset.ResultSet{}
	collect := func(ev ServeGenerationEvent) error {
		for _, s := range ev.Itemsets {
			rs.Add(s.Items, s.Support)
		}
		return nil
	}
	info, err := c.Stream(ctx, job.ID, collect)
	if err != nil {
		c.forget(job.ID)
		return nil, nil, err
	}
	if info.State != JobDone.String() {
		return nil, info, fmt.Errorf("gpapriori: served job %s ended %s: %s", info.ID, info.State, info.Error)
	}
	res := &Result{
		Algorithm:     Algorithm(info.Algorithm),
		MinSupport:    info.MinSupport,
		Itemsets:      toItemsets(rs),
		HostSeconds:   info.HostSeconds,
		DeviceSeconds: info.DeviceSeconds,
		Faults:        info.Faults,
	}
	return res, info, nil
}
