// Package peer is gpaserve's multi-node membership and placement
// layer: a static peer list (no consensus, no gossip — the operator
// names every node), consistent-hash placement of datasets over that
// list, and a health prober with suspect/recover hysteresis so the
// serving layer can route around a dead peer without ever disagreeing
// about where a dataset *should* live.
//
// The deliberate simplicity is the design: because membership is
// static and the ring is a pure function of the peer URLs, every node
// computes identical placement with zero coordination. Health views
// may diverge transiently (each node probes independently), which is
// why placement answers come in two flavors — Owners (static, what the
// ring says) and Resolve (alive-filtered, what this node would use
// right now). See DESIGN.md §17 for what that does and does not
// guarantee.
package peer

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config describes one node's view of the cluster. The zero value
// means "not clustered" (Enabled reports false); a non-empty Peers
// list turns the node into a cluster member.
type Config struct {
	// Self is this node's advertised base URL; it must appear in
	// Peers. Peers reach this node at Self, so it must be routable
	// from them (not a wildcard bind address).
	Self string

	// Peers is the full static membership, including Self. Every node
	// in a cluster must be started with the same list (order does not
	// matter — the ring hashes URLs, not indexes).
	Peers []string

	// Replication is how many distinct peers own each dataset.
	// Defaults to 2, and is capped by Validate at len(Peers).
	Replication int

	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration

	// ProbeTimeout bounds one probe request (default 2s).
	ProbeTimeout time.Duration

	// SuspectAfter is how many consecutive probe failures flip a peer
	// to suspected (default 3). RecoverAfter is how many consecutive
	// successes flip it back (default 2). The asymmetric hysteresis
	// keeps a flapping peer from oscillating placement every probe.
	SuspectAfter int
	RecoverAfter int

	// Client performs the probes. Defaults to a plain http.Client;
	// per-probe deadlines come from ProbeTimeout.
	Client *http.Client

	// Log receives membership transitions (suspected/recovered). Nil
	// discards them.
	Log io.Writer
}

// Enabled reports whether this node is part of a cluster.
func (c Config) Enabled() bool { return len(c.Peers) > 0 }

// NormalizeURL canonicalizes a peer URL for identity comparisons:
// trims whitespace and any trailing slash. Peers.Self and every peers
// entry are compared after normalization, so "http://a:1/" and
// "http://a:1" name the same node.
func NormalizeURL(s string) string {
	return strings.TrimRight(strings.TrimSpace(s), "/")
}

// withDefaults returns a copy with zero fields replaced by defaults
// and URLs normalized.
func (c Config) withDefaults() Config {
	out := c
	out.Self = NormalizeURL(c.Self)
	out.Peers = make([]string, len(c.Peers))
	for i, p := range c.Peers {
		out.Peers[i] = NormalizeURL(p)
	}
	if out.Replication == 0 {
		out.Replication = 2
	}
	if out.Replication > len(out.Peers) {
		out.Replication = len(out.Peers)
	}
	if out.ProbeInterval == 0 {
		out.ProbeInterval = time.Second
	}
	if out.ProbeTimeout == 0 {
		out.ProbeTimeout = 2 * time.Second
	}
	if out.SuspectAfter == 0 {
		out.SuspectAfter = 3
	}
	if out.RecoverAfter == 0 {
		out.RecoverAfter = 2
	}
	if out.Client == nil {
		out.Client = &http.Client{}
	}
	return out
}

// Validate checks a clustered config (call only when Enabled). It
// validates the raw values; defaults are applied separately.
func (c Config) Validate() error {
	d := c.withDefaults()
	if len(d.Peers) < 2 {
		return fmt.Errorf("peer: need at least 2 peers, got %d", len(d.Peers))
	}
	seen := make(map[string]bool, len(d.Peers))
	for _, p := range d.Peers {
		u, err := url.Parse(p)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("peer: %q is not an absolute http(s) URL", p)
		}
		if seen[p] {
			return fmt.Errorf("peer: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if d.Self == "" {
		return fmt.Errorf("peer: self URL required in cluster mode")
	}
	if !seen[d.Self] {
		return fmt.Errorf("peer: self %q not in peer list", d.Self)
	}
	if c.Replication < 0 || c.Replication > len(d.Peers) {
		return fmt.Errorf("peer: replication %d out of range [1, %d]", c.Replication, len(d.Peers))
	}
	if c.ProbeInterval < 0 || c.ProbeTimeout < 0 {
		return fmt.Errorf("peer: negative probe interval/timeout")
	}
	if c.SuspectAfter < 0 || c.RecoverAfter < 0 {
		return fmt.Errorf("peer: negative suspect/recover threshold")
	}
	return nil
}

// vnodes is how many ring points each peer contributes. 64 points per
// peer keeps the max/min ownership skew under ~30% for small clusters
// while the whole ring for 16 peers still fits in a cache line count
// nobody will notice.
const vnodes = 64

type ringPoint struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is a consistent-hash ring over a fixed peer list. It is
// immutable after construction and therefore safe for concurrent use.
// Every node building a Ring from the same peer set (any order) gets
// identical placement: points hash the peer URL, not its position.
type Ring struct {
	peers  []string
	points []ringPoint
}

// NewRing builds the ring for the given (normalized) peer URLs.
func NewRing(peers []string) *Ring {
	r := &Ring{peers: append([]string(nil), peers...)}
	sort.Strings(r.peers)
	r.points = make([]ringPoint, 0, len(r.peers)*vnodes)
	for i, p := range r.peers {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", p, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].peer < r.points[b].peer
	})
	return r
}

// Sequence returns all peers in ring order starting from key: the
// first element is the primary owner, and the first Replication
// distinct entries are the static owner set. len(result) == number of
// peers; every peer appears exactly once.
func (r *Ring) Sequence(key uint64) []string {
	out := make([]string, 0, len(r.peers))
	taken := make([]bool, len(r.peers))
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= key
	})
	for i := 0; i < len(r.points) && len(out) < len(r.peers); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !taken[pt.peer] {
			taken[pt.peer] = true
			out = append(out, r.peers[pt.peer])
		}
	}
	return out
}

// Status is one peer's health as seen by this node.
type Status struct {
	URL                 string
	Self                bool
	Suspected           bool
	ConsecutiveFailures int
	Probes              int64
	Failures            int64
	LastError           string
}

type peerState struct {
	suspected   bool
	consecFails int
	consecOKs   int
	probes      int64
	failures    int64
	lastErr     string
}

// Set is the live membership view: the ring plus per-peer probe state.
// Start launches the prober; Stop tears it down (Drain calls it).
type Set struct {
	cfg  Config
	ring *Ring

	mu     sync.Mutex
	states map[string]*peerState

	cancel context.CancelFunc
	done   chan struct{}
}

// NewSet validates cfg, applies defaults, and builds the membership
// view. The prober is not started; call Start.
func NewSet(cfg Config) (*Set, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	s := &Set{
		cfg:    d,
		ring:   NewRing(d.Peers),
		states: make(map[string]*peerState, len(d.Peers)),
	}
	for _, p := range d.Peers {
		s.states[p] = &peerState{}
	}
	return s, nil
}

// Self returns this node's normalized URL.
func (s *Set) Self() string { return s.cfg.Self }

// Peers returns the normalized membership in ring (sorted) order.
func (s *Set) Peers() []string { return append([]string(nil), s.ring.peers...) }

// Replication returns the effective replication factor.
func (s *Set) Replication() int { return s.cfg.Replication }

// Start launches the probe loop bound to the process lifetime. Call
// at most once.
func (s *Set) Start() { s.StartContext(context.Background()) }

// StartContext launches the probe loop under parent; canceling parent
// (or calling Stop) terminates it.
func (s *Set) StartContext(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	s.cancel = cancel
	s.done = make(chan struct{})
	go s.probeLoop(ctx)
}

// Stop cancels the probe loop and waits for it to exit, then releases
// the probe client's pooled connections — without this, idle
// keep-alive conns (and their transport goroutines) linger until the
// transport's own timeout. Safe to call when Start was never called.
func (s *Set) Stop() {
	if s.cancel == nil {
		s.cfg.Client.CloseIdleConnections()
		return
	}
	s.cancel()
	<-s.done
	s.cfg.Client.CloseIdleConnections()
}

// probeLoop drives periodic probe rounds until its context is
// canceled (the goroutine-termination idiom goroleak checks for).
func (s *Set) probeLoop(ctx context.Context) {
	defer close(s.done)
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.ProbeOnce(ctx)
		}
	}
}

// ProbeOnce runs one synchronous probe round against every peer but
// self. Exported so tests (and boot code that wants an immediate
// health view) can drive rounds deterministically without the ticker.
func (s *Set) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.cfg.Peers {
		if p == s.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(target string) {
			defer wg.Done()
			s.record(target, s.probe(ctx, target))
		}(p)
	}
	wg.Wait()
}

// probe performs one health check: HTTP 200 from /healthz with a
// non-draining status counts as alive. A draining peer answers 200 —
// it is still finishing jobs — but advertises that it will not accept
// new work, so for placement purposes it is already gone.
func (s *Set) probe(ctx context.Context, target string) error {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	var hb struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &hb); err != nil {
		return fmt.Errorf("healthz: bad body: %w", err)
	}
	if hb.Status == "draining" {
		return fmt.Errorf("healthz: peer draining")
	}
	return nil
}

// record folds one probe outcome into the hysteresis counters. The
// lock covers only the counter update; transitions are logged after
// release.
func (s *Set) record(target string, err error) {
	var transition string
	s.mu.Lock()
	st := s.states[target]
	st.probes++
	if err != nil {
		st.failures++
		st.lastErr = err.Error()
		st.consecFails++
		st.consecOKs = 0
		if !st.suspected && st.consecFails >= s.cfg.SuspectAfter {
			st.suspected = true
			transition = fmt.Sprintf("peer %s suspected after %d consecutive probe failures (%v)",
				target, st.consecFails, err)
		}
	} else {
		st.lastErr = ""
		st.consecOKs++
		st.consecFails = 0
		if st.suspected && st.consecOKs >= s.cfg.RecoverAfter {
			st.suspected = false
			transition = fmt.Sprintf("peer %s recovered after %d consecutive probe successes",
				target, st.consecOKs)
		}
	}
	s.mu.Unlock()
	if transition != "" && s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, "%s\n", transition)
	}
}

// Alive reports whether target is currently believed reachable. Self
// and unknown URLs are always alive (an unknown URL is a programming
// error upstream; treating it as dead would silently shrink
// placement).
func (s *Set) Alive(target string) bool {
	if target == s.cfg.Self {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.states[target]
	return !ok || !st.suspected
}

// Status returns every peer's health in ring (sorted) order.
func (s *Set) Status() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.ring.peers))
	for _, p := range s.ring.peers {
		st := s.states[p]
		out = append(out, Status{
			URL:                 p,
			Self:                p == s.cfg.Self,
			Suspected:           st.suspected,
			ConsecutiveFailures: st.consecFails,
			Probes:              st.probes,
			Failures:            st.failures,
			LastError:           st.lastErr,
		})
	}
	return out
}

// Owners returns the static owner set for key: the first Replication
// distinct peers clockwise on the ring. Every node computes the same
// answer regardless of health views.
func (s *Set) Owners(key uint64) []string {
	return s.ring.Sequence(key)[:s.cfg.Replication]
}

// Resolve returns the owners this node would use right now: the first
// Replication *alive* peers in ring order from key. Because self is
// always alive, the result is never empty as long as this node is up —
// with every other peer suspected, every dataset resolves here. If
// (impossibly) nothing is alive, it falls back to the static owners.
func (s *Set) Resolve(key uint64) []string {
	seq := s.ring.Sequence(key)
	out := make([]string, 0, s.cfg.Replication)
	for _, p := range seq {
		if s.Alive(p) {
			out = append(out, p)
			if len(out) == s.cfg.Replication {
				break
			}
		}
	}
	if len(out) == 0 {
		return seq[:s.cfg.Replication]
	}
	return out
}
