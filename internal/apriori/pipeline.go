// The pooled parallel pipeline: a persistent worker pool mines
// prefix-class "families" (a trie node plus its freshly generated
// children) as independent tasks, so candidate generation for one class
// overlaps support counting of every other class — including classes of
// the next generation. Each worker carries reusable scratch (a
// BatchCounter, a prefix-intersection bitset, vector-list buffers), and
// materialized class intersections are recycled through a sync.Pool under
// a configurable memory budget, so steady-state counting performs zero
// allocations in the hot loop.
//
// Correctness relies on downward closure only: a class is extended only
// through children that counted frequent, so skipping the level-wise
// all-subsets prune (which would need a synchronized global generation
// barrier) never changes the frequent set — any candidate the prune would
// have removed counts below minsup and is discarded. The result is
// bit-identical to the level-wise driver's (see the equivalence tests).
package apriori

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gpapriori/internal/bitset"
	"gpapriori/internal/dataset"
	"gpapriori/internal/trie"
	"gpapriori/internal/vertical"
)

// PipelineOptions configures the pooled parallel pipeline miner.
type PipelineOptions struct {
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
	// Popcount selects the popcount implementation.
	Popcount bitset.PopcountKind
	// Count selects the counting variants. PrefixCache here additionally
	// caches each class's materialized intersection across the generation
	// boundary: a family's base vector is derived from its parent class's
	// base with a single AND, under Count.BudgetBytes.
	Count CountOptions
}

// Pipeline is the pooled parallel pipelined miner bound to one database.
type Pipeline struct {
	db  *dataset.DB
	v   *vertical.BitsetDB
	opt PipelineOptions
}

// NewPipeline builds the pipeline miner over db.
func NewPipeline(db *dataset.DB, opt PipelineOptions) *Pipeline {
	return NewPipelineOver(db, vertical.BuildBitsets(db), opt)
}

// NewPipelineOver builds the miner over an already-transposed vertical
// database.
func NewPipelineOver(db *dataset.DB, v *vertical.BitsetDB, opt PipelineOptions) *Pipeline {
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{db: db, v: v, opt: opt}
}

// Name identifies the strategy in reports.
func (p *Pipeline) Name() string {
	return fmt.Sprintf("Pipeline(bitset,%s%s,workers=%d)",
		p.opt.Popcount.String(), p.opt.Count.tag(), p.opt.Workers)
}

// pipeTask is one family: parent's children are freshly generated
// candidates awaiting counting. cached, when non-nil, is the materialized
// intersection of the prefix items (owned by the task; returned to the
// run's pool after processing).
type pipeTask struct {
	parent *trie.Node
	prefix []dataset.Item
	cached *bitset.Bitset
}

// pipeRun is the shared state of one mining run.
type pipeRun struct {
	p      *Pipeline
	trie   *trie.Trie
	minsup int
	cfg    Config
	ctx    context.Context

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []pipeTask
	outstanding int
	stopped     bool
	err         error
	perDepth    []int // candidates generated per depth (guarded by mu)

	cachedBytes atomic.Int64
	pool        sync.Pool
}

// Mine runs the pipeline at the given absolute minimum support.
func (p *Pipeline) Mine(minSupport int, cfg Config) (*dataset.ResultSet, error) {
	return p.MineContext(context.Background(), minSupport, cfg)
}

// MineContext is Mine with cancellation, honored at every family
// boundary.
func (p *Pipeline) MineContext(ctx context.Context, minSupport int, cfg Config) (*dataset.ResultSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("apriori: minimum support %d must be ≥1", minSupport)
	}
	t := trie.New()
	t.SeedFrequentItems(p.db.ItemSupports(), minSupport)

	r := &pipeRun{p: p, trie: t, minsup: minSupport, cfg: cfg, ctx: ctx}
	r.cond = sync.NewCond(&r.mu)
	r.enqueue(pipeTask{parent: t.Root})

	var wg sync.WaitGroup
	for w := 0; w < p.opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.work()
		}()
	}
	wg.Wait()
	if r.err != nil {
		return nil, r.err
	}
	return t.Frequent(minSupport), nil
}

// enqueue adds a task (LIFO: workers pop the newest task, so exploration
// is depth-first — the queue and the set of live cached vectors stay
// small, and a family is usually counted while its parent class's vectors
// are still warm).
func (r *pipeRun) enqueue(t pipeTask) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		r.releaseCached(t.cached)
		return
	}
	r.queue = append(r.queue, t)
	r.outstanding++
	r.cond.Signal()
	r.mu.Unlock()
}

// next pops a task, blocking until one is available or the run stops.
func (r *pipeRun) next() (pipeTask, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.queue) == 0 && !r.stopped {
		r.cond.Wait()
	}
	if r.stopped && len(r.queue) == 0 {
		return pipeTask{}, false
	}
	t := r.queue[len(r.queue)-1]
	r.queue = r.queue[:len(r.queue)-1]
	return t, true
}

// taskDone retires one task; the run stops when none remain.
func (r *pipeRun) taskDone() {
	r.mu.Lock()
	r.outstanding--
	if r.outstanding == 0 {
		r.stopped = true
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// fail records the first error and stops the run.
func (r *pipeRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	if !r.stopped {
		r.stopped = true
		r.cond.Broadcast()
	}
	// Drop queued tasks so their retirements don't keep the run alive.
	r.outstanding -= len(r.queue)
	for _, t := range r.queue {
		r.releaseCached(t.cached)
	}
	r.queue = nil
	r.mu.Unlock()
}

// addGenerated records n candidates generated at the given itemset length
// and enforces Config.MaxCandidates per generation.
func (r *pipeRun) addGenerated(length, n int) error {
	if r.cfg.MaxCandidates <= 0 {
		return nil
	}
	r.mu.Lock()
	for len(r.perDepth) <= length {
		r.perDepth = append(r.perDepth, 0)
	}
	r.perDepth[length] += n
	total := r.perDepth[length]
	r.mu.Unlock()
	if total > r.cfg.MaxCandidates {
		return fmt.Errorf("apriori: generation %d has %d candidates (limit %d)",
			length, total, r.cfg.MaxCandidates)
	}
	return nil
}

// acquireCached returns a class-intersection bitset from the pool if the
// budget allows, or nil (callers fall back to rematerializing from the
// first-generation vectors — complete intersection per class).
func (r *pipeRun) acquireCached() *bitset.Bitset {
	bytes := int64(bitset.AlignedWords(r.p.v.NumTrans) * 8)
	if budget := int64(r.p.opt.Count.BudgetBytes); budget > 0 {
		for {
			cur := r.cachedBytes.Load()
			if cur+bytes > budget {
				return nil
			}
			if r.cachedBytes.CompareAndSwap(cur, cur+bytes) {
				break
			}
		}
	} else {
		r.cachedBytes.Add(bytes)
	}
	if b, ok := r.pool.Get().(*bitset.Bitset); ok {
		return b
	}
	return bitset.New(r.p.v.NumTrans)
}

// releaseCached refunds the budget and recycles the vector.
func (r *pipeRun) releaseCached(b *bitset.Bitset) {
	if b == nil {
		return
	}
	r.cachedBytes.Add(-int64(bitset.AlignedWords(r.p.v.NumTrans) * 8))
	r.pool.Put(b)
}

// pipeWorker is one worker's reusable scratch.
type pipeWorker struct {
	r        *pipeRun
	bc       *bitset.BatchCounter
	popc     func(uint64) int
	scratch  *bitset.Bitset
	vs       []*bitset.Bitset
	lasts    []*bitset.Bitset
	lists    [][]*bitset.Bitset
	listBack []*bitset.Bitset
	out      []int
}

// work is the worker loop.
func (r *pipeRun) work() {
	w := &pipeWorker{
		r:    r,
		bc:   bitset.NewBatchCounter(r.p.opt.Popcount, r.p.opt.Count.TileWords),
		popc: r.p.opt.Popcount.Func(),
	}
	for {
		t, ok := r.next()
		if !ok {
			return
		}
		if err := r.ctx.Err(); err != nil {
			r.fail(err)
			r.releaseCached(t.cached)
			r.taskDone()
			continue
		}
		if err := w.process(t); err != nil {
			r.fail(err)
		}
		r.taskDone()
	}
}

// process counts one family's candidates, prunes the infrequent ones, and
// joins the survivors into child families.
func (w *pipeWorker) process(t pipeTask) error {
	r := w.r
	p := t.parent
	k := len(t.prefix) + 1 // length of the candidates under p

	var base *bitset.Bitset // this class's intersection, when materialized
	if p != r.trie.Root {
		base = w.countFamily(t, k)
	}
	// Prune infrequent children in place; only this task touches p.
	kept := p.Children[:0]
	for _, c := range p.Children {
		if c.Support >= r.minsup {
			kept = append(kept, c)
		}
	}
	for i := len(kept); i < len(p.Children); i++ {
		p.Children[i] = nil
	}
	p.Children = kept

	// Join each surviving child with its right siblings — generation k+1
	// candidate generation, running while other families (of this and
	// other generations) are still being counted by the pool.
	if r.cfg.MaxLen > 0 && k+1 > r.cfg.MaxLen {
		r.releaseCached(t.cached)
		return nil
	}
	opt := r.p.opt.Count
	for i, x := range kept {
		if len(kept)-i < 2 {
			break
		}
		for _, y := range kept[i+1:] {
			node := x.AddChild(y.Item)
			node.Support = -1
		}
	}
	for _, x := range kept {
		if len(x.Children) == 0 {
			continue
		}
		if err := r.addGenerated(k+1, len(x.Children)); err != nil {
			r.releaseCached(t.cached)
			return err
		}
		child := pipeTask{
			parent: x,
			prefix: append(append(make([]dataset.Item, 0, k), t.prefix...), x.Item),
		}
		// Derive the child class's intersection from this class's with a
		// single AND while it is still on hand — the cross-generation
		// reuse of prefix-class caching.
		if opt.PrefixCache && k >= 2 {
			if cb := r.acquireCached(); cb != nil {
				if base == nil {
					base = w.materialize(child.prefix[:k-1], k-1)
				}
				cb.And(base, r.p.v.Vectors[x.Item])
				child.cached = cb
			}
		}
		r.enqueue(child)
	}
	r.releaseCached(t.cached)
	return nil
}

// materialize builds the intersection of the given prefix items in the
// worker's scratch vector. n is len(items); for n == 1 the item's own
// vector is returned without copying.
func (w *pipeWorker) materialize(items []dataset.Item, n int) *bitset.Bitset {
	v := w.r.p.v
	if n == 1 {
		return v.Vectors[items[0]]
	}
	if w.scratch == nil {
		w.scratch = bitset.New(v.NumTrans)
	}
	if cap(w.vs) < n {
		w.vs = make([]*bitset.Bitset, n)
	}
	vs := w.vs[:n]
	for i, it := range items[:n] {
		vs[i] = v.Vectors[it]
	}
	bitset.IntersectInto(w.scratch, vs)
	return w.scratch
}

// countFamily writes supports into the family's children and returns the
// class's materialized intersection when one was used (nil otherwise).
func (w *pipeWorker) countFamily(t pipeTask, k int) *bitset.Bitset {
	r := w.r
	v := r.p.v
	opt := r.p.opt.Count
	children := t.parent.Children
	m := len(children)
	if m == 0 {
		return nil
	}
	abort := 0
	if opt.EarlyAbort {
		abort = r.minsup
	}
	if cap(w.out) < m {
		w.out = make([]int, m)
	}
	out := w.out[:m]

	usePrefix := opt.PrefixCache && k >= 2
	if usePrefix {
		base := t.cached
		if base == nil {
			base = w.materialize(t.prefix, k-1)
		}
		if cap(w.lasts) < m {
			w.lasts = make([]*bitset.Bitset, m)
		}
		lasts := w.lasts[:m]
		for i, c := range children {
			lasts[i] = v.Vectors[c.Item]
		}
		w.bc.CountPairs(base, lasts, abort, out)
		for i, c := range children {
			c.Support = out[i]
		}
		return base
	}

	if opt.Blocked {
		if cap(w.listBack) < m*k {
			w.listBack = make([]*bitset.Bitset, m*k)
		}
		if cap(w.lists) < m {
			w.lists = make([][]*bitset.Bitset, m)
		}
		lists := w.lists[:m]
		back := w.listBack[:m*k]
		for i, c := range children {
			row := back[i*k : (i+1)*k]
			for j, it := range t.prefix {
				row[j] = v.Vectors[it]
			}
			row[k-1] = v.Vectors[c.Item]
			lists[i] = row
		}
		w.bc.CountMany(lists, abort, out)
	} else {
		if cap(w.vs) < k {
			w.vs = make([]*bitset.Bitset, k)
		}
		vs := w.vs[:k]
		for j, it := range t.prefix {
			vs[j] = v.Vectors[it]
		}
		for i := range children {
			vs[k-1] = v.Vectors[children[i].Item]
			out[i] = bitset.IntersectCountManyWith(vs, w.popc)
		}
	}
	for i, c := range children {
		c.Support = out[i]
	}
	return nil
}
