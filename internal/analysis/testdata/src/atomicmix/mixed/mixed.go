// Failing cases for atomicmix: struct fields accessed through
// sync/atomic in one place and by plain read/write in another — the
// /statsz-counter bug.
package mixed

import "sync/atomic"

type stats struct {
	served  int64
	dropped int64
	flag    uint32
}

func (s *stats) hit() {
	atomic.AddInt64(&s.served, 1)
}

// load is the atomic discipline — the operand is not a plain use.
func (s *stats) load() int64 {
	return atomic.LoadInt64(&s.served)
}

func (s *stats) snapshot() int64 {
	return s.served // want `plain access to field served`
}

func (s *stats) reset() {
	s.served = 0 // want `plain access to field served`
	s.dropped = 0
}

func (s *stats) markUp() {
	atomic.StoreUint32(&s.flag, 1)
}

func (s *stats) isUp() bool {
	return s.flag == 1 // want `plain access to field flag.*atomic\.Uint32`
}
