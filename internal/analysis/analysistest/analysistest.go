// Package analysistest is the offline counterpart of
// golang.org/x/tools/go/analysis/analysistest: it loads a testdata
// package, runs one analyzer over it, and checks the reported
// diagnostics against `// want "regexp"` comments in the sources.
//
// Layout mirrors the x/tools convention: testdata packages live under
// <caller>/testdata/src/<analyzer>/<case>. Because scoped analyzers
// (determinism, maporder) decide applicability from the
// final import-path segment, each case directory is loaded under an
// import path ending in the case name — naming a case "core" or
// "jobs" puts it in scope, any other name proves the out-of-scope
// behaviour with the very same matching logic production uses.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gpapriori/internal/analysis"
)

// wantRe pulls the quoted regexps out of a want comment; both
// double-quoted and backquoted forms are accepted, as in x/tools:
//
//	// want "pattern" `pattern with "quotes"`
var wantRe = regexp.MustCompile("`([^`]*)`" + `|"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// Run loads testdata/src/<caseDir> as an import path ending in the
// case name and checks a's diagnostics against the // want comments.
func Run(t *testing.T, a *analysis.Analyzer, caseDir string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", filepath.FromSlash(caseDir))
	pkg, err := loader.LoadDirAs(dir, "gpalint.test/"+caseDir)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", caseDir, err)
	}

	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s",
				filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(e.file), e.line, e.re)
		}
	}
}

// claim marks the first unused expectation at (file, line) whose
// regexp matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.used && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}

func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text[idx:], -1)
				if len(matches) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, text)
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %w", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// moduleRoot walks up from the package source location to go.mod. Tests
// run with the package directory as the working directory, so walking
// up from "." is sufficient and keeps the helper free of runtime tricks.
func moduleRoot() (string, error) {
	dir, err := filepath.Abs(".")
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the test working directory")
		}
		dir = parent
	}
}
