package apriori

import (
	"runtime"
	"sync"

	"gpapriori/internal/bitset"
	"gpapriori/internal/dataset"
	"gpapriori/internal/trie"
	"gpapriori/internal/vertical"
)

// ParallelBitset is the multi-core CPU strategy the paper's Section II
// anticipates ("Apriori has more performance potential for multi- and
// many-core platforms"): complete intersection over static bitsets, with
// each generation's candidates statically partitioned across worker
// goroutines. Candidates are independent, so the parallelization is
// embarrassing — the same property the GPU kernel exploits with one block
// per candidate.
type ParallelBitset struct {
	v       *vertical.BitsetDB
	popc    func(uint64) int
	kind    bitset.PopcountKind
	workers int
}

// NewParallelBitset builds the counter over db with the given worker
// count (0 = GOMAXPROCS).
func NewParallelBitset(db *dataset.DB, kind bitset.PopcountKind, workers int) *ParallelBitset {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelBitset{
		v:       vertical.BuildBitsets(db),
		popc:    kind.Func(),
		kind:    kind,
		workers: workers,
	}
}

// Name implements Counter.
func (c *ParallelBitset) Name() string {
	return "ParallelCPU(bitset," + c.kind.String() + ")"
}

// Count implements Counter.
func (c *ParallelBitset) Count(_ *trie.Trie, cands []trie.Candidate, k int) error {
	workers := c.workers
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		vs := make([]*bitset.Bitset, k)
		for _, cand := range cands {
			for i, item := range cand.Items {
				vs[i] = c.v.Vectors[item]
			}
			cand.Node.Support = bitset.IntersectCountManyWith(vs, c.popc)
		}
		return nil
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(cands) {
			break
		}
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		wg.Add(1)
		go func(part []trie.Candidate) {
			defer wg.Done()
			vs := make([]*bitset.Bitset, k)
			for _, cand := range part {
				for i, item := range cand.Items {
					vs[i] = c.v.Vectors[item]
				}
				// Each worker writes only its own candidates' trie nodes,
				// so no synchronization is needed on the supports.
				cand.Node.Support = bitset.IntersectCountManyWith(vs, c.popc)
			}
		}(cands[lo:hi])
	}
	wg.Wait()
	return nil
}
