package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample mimics `go test -bench -benchmem` output with a complete
// baseline, a repeated (count=2) variant row, and a pipeline worker
// sweep whose w=4 point regresses past the monotone tolerance.
const sample = `goos: linux
goarch: amd64
pkg: gpapriori/internal/apriori
cpu: Fake CPU @ 1.00GHz
BenchmarkMineCPUTest/shape=T40/variant=complete-8   	      10	  40000000 ns/op	 1000 B/op	  100 allocs/op
BenchmarkMineCPUTest/shape=T40/variant=prefix-8     	      50	  10000000 ns/op	  500 B/op	   50 allocs/op
BenchmarkMineCPUTest/shape=T40/variant=prefix-8     	      50	   8000000 ns/op	  500 B/op	   50 allocs/op
BenchmarkMinePipeline/shape=T40/workers=1-8         	     100	   4000000 ns/op	  400 B/op	   30 allocs/op
BenchmarkMinePipeline/shape=T40/workers=2-8         	     100	   4100000 ns/op	  400 B/op	   35 allocs/op
BenchmarkMinePipeline/shape=T40/workers=4-8         	     100	   5000000 ns/op	  400 B/op	   40 allocs/op
BenchmarkMinePipeline/shape=T40/workers=8-8         	     100	   4200000 ns/op	  400 B/op	   47 allocs/op
PASS
`

func runSample(t *testing.T, prevPath string) report {
	t.Helper()
	var out bytes.Buffer
	if err := run(strings.NewReader(sample), &out, prevPath); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	return rep
}

func TestRunParsesAndDedups(t *testing.T) {
	rep := runSample(t, "")
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "Fake CPU @ 1.00GHz" {
		t.Errorf("header fields wrong: %+v", rep)
	}
	// 7 input rows, one repeated name → 6 benchmarks, fastest kept.
	if len(rep.Benchmarks) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if strings.Contains(b.Name, "variant=prefix") && b.NsPerOp != 8000000 {
			t.Errorf("dedup kept %v ns/op for prefix, want fastest 8000000", b.NsPerOp)
		}
	}
}

func TestRunSpeedups(t *testing.T) {
	rep := runSample(t, "")
	want := map[string]float64{
		"BenchmarkMineCPUTest/shape=T40/variant=prefix": 5,  // 40ms / 8ms
		"BenchmarkMinePipeline/shape=T40/workers=1":     10, // 40ms / 4ms
	}
	got := map[string]float64{}
	for _, s := range rep.Speedups {
		got[s.Benchmark] = s.SpeedupVsComplete
	}
	for name, w := range want {
		if math.Abs(got[name]-w) > 1e-9 {
			t.Errorf("%s speedup = %v, want %v", name, got[name], w)
		}
	}
	if rep.MaxSpeedup != 10 {
		t.Errorf("max speedup = %v, want 10", rep.MaxSpeedup)
	}
}

func TestRunScalingSection(t *testing.T) {
	rep := runSample(t, "")
	if len(rep.Scaling) != 1 {
		t.Fatalf("got %d scaling shapes, want 1", len(rep.Scaling))
	}
	sc := rep.Scaling[0]
	if sc.Shape != "T40" {
		t.Errorf("shape = %q, want T40", sc.Shape)
	}
	if len(sc.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(sc.Points))
	}
	for i, wantW := range []int{1, 2, 4, 8} {
		if sc.Points[i].Workers != wantW {
			t.Errorf("point %d workers = %d, want %d (sorted)", i, sc.Points[i].Workers, wantW)
		}
	}
	if got := sc.Points[0].SpeedupVsW1; got != 1 {
		t.Errorf("w1 speedup_vs_w1 = %v, want 1", got)
	}
	if got := sc.Points[2].SpeedupVsW1; math.Abs(got-0.8) > 1e-9 {
		t.Errorf("w4 speedup_vs_w1 = %v, want 0.8", got)
	}
	if got := sc.Points[0].SpeedupVsComplete; got != 10 {
		t.Errorf("w1 speedup_vs_complete = %v, want 10", got)
	}
	// 4.0 → 4.1ms is within the 10% tolerance, but 4.1 → 5.0ms is not.
	if sc.Monotone {
		t.Error("curve with a 22%% step regression reported monotone")
	}
}

func TestRunScalingMonotoneTolerance(t *testing.T) {
	flat := strings.ReplaceAll(sample, "5000000 ns/op", "4300000 ns/op")
	var out bytes.Buffer
	if err := run(strings.NewReader(flat), &out, ""); err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Scaling) != 1 || !rep.Scaling[0].Monotone {
		t.Errorf("flat-within-10%% curve flagged non-monotone: %+v", rep.Scaling)
	}
}

func TestRunPrevDelta(t *testing.T) {
	prev := report{
		Benchmarks: []benchmark{
			{Name: "BenchmarkMinePipeline/shape=T40/workers=1", NsPerOp: 8000000, AllocsPerOp: 60},
			{Name: "BenchmarkGone/shape=old/variant=thing", NsPerOp: 1, AllocsPerOp: 1},
		},
	}
	data, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_prev.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep := runSample(t, path)
	if rep.Prev != path {
		t.Errorf("prev = %q, want %q", rep.Prev, path)
	}
	if len(rep.Deltas) != 1 {
		t.Fatalf("got %d deltas, want 1 (only shared names): %+v", len(rep.Deltas), rep.Deltas)
	}
	d := rep.Deltas[0]
	if d.Benchmark != "BenchmarkMinePipeline/shape=T40/workers=1" {
		t.Errorf("delta benchmark = %q", d.Benchmark)
	}
	if math.Abs(d.NsRatio-0.5) > 1e-9 {
		t.Errorf("ns ratio = %v, want 0.5 (got faster)", d.NsRatio)
	}
	if math.Abs(d.AllocsRatio-0.5) > 1e-9 {
		t.Errorf("allocs ratio = %v, want 0.5", d.AllocsRatio)
	}
}

func TestRunPrevMissingFile(t *testing.T) {
	err := run(strings.NewReader(sample), &bytes.Buffer{}, filepath.Join(t.TempDir(), "nope.json"))
	if err == nil {
		t.Fatal("missing -prev file did not error")
	}
}
