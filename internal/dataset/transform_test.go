package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func testDB() *DB {
	return New([][]Item{
		{0, 1, 2}, {1, 2}, {2}, {1, 2, 3},
	})
}

func TestRemapByFrequency(t *testing.T) {
	db := testDB()
	remapped, perm := RemapByFrequency(db)
	// Old supports: 0→1, 1→3, 2→4, 3→1. New ids: 2→0, 1→1, 0→2, 3→3.
	want := []Item{2, 1, 0, 3}
	for old, new := range want {
		if perm[old] != new {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
	// Most frequent new item must be id 0 with the old maximum support.
	sup := remapped.ItemSupports()
	for i := 1; i < len(sup); i++ {
		if sup[i-1] < sup[i] {
			t.Fatalf("remapped supports not descending: %v", sup)
		}
	}
	if sup[0] != 4 {
		t.Fatalf("top support = %d, want 4", sup[0])
	}
	// Same number of transactions and total occurrences.
	if remapped.Len() != db.Len() {
		t.Fatal("transaction count changed")
	}
}

func TestInversePermutation(t *testing.T) {
	_, perm := RemapByFrequency(testDB())
	inv := InversePermutation(perm)
	for old := range perm {
		if int(inv[perm[old]]) != old {
			t.Fatalf("inverse broken at %d", old)
		}
	}
}

func TestSample(t *testing.T) {
	db := New(nil)
	for i := 0; i < 4000; i++ {
		db.Append([]Item{Item(i % 7)})
	}
	s, err := Sample(db, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 800 || s.Len() > 1200 {
		t.Fatalf("sample of 25%% kept %d/4000", s.Len())
	}
	again, _ := Sample(db, 0.25, 5)
	if again.Len() != s.Len() {
		t.Fatal("sampling not deterministic")
	}
	if _, err := Sample(db, 0, 1); err == nil {
		t.Fatal("zero fraction accepted")
	}
	if _, err := Sample(db, 1.5, 1); err == nil {
		t.Fatal("fraction >1 accepted")
	}
}

func TestPartition(t *testing.T) {
	db := testDB()
	parts, err := Partition(db, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != db.Len() {
		t.Fatalf("partitions hold %d transactions, want %d", total, db.Len())
	}
	// Summed per-item supports must equal the original.
	orig := db.ItemSupports()
	for item := range orig {
		sum := 0
		for _, p := range parts {
			if item < p.NumItems() {
				sum += p.ItemSupports()[item]
			}
		}
		if sum != orig[item] {
			t.Fatalf("item %d: partitioned support %d, want %d", item, sum, orig[item])
		}
	}
	if _, err := Partition(db, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
}

func TestFilter(t *testing.T) {
	db := testDB()
	long := Filter(db, func(tr Transaction) bool { return len(tr) >= 3 })
	if long.Len() != 2 {
		t.Fatalf("Filter kept %d, want 2", long.Len())
	}
}

func TestProjectItems(t *testing.T) {
	db := testDB()
	proj := ProjectItems(db, []Item{1, 3})
	// {0,1,2}→{1}, {1,2}→{1}, {2}→dropped, {1,2,3}→{1,3}.
	if proj.Len() != 3 {
		t.Fatalf("projection has %d transactions, want 3", proj.Len())
	}
	for i := 0; i < proj.Len(); i++ {
		for _, it := range proj.Transaction(i) {
			if it != 1 && it != 3 {
				t.Fatalf("projection leaked item %d", it)
			}
		}
	}
}

func TestDictionaryInternAndName(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("bread")
	b := d.Intern("milk")
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if d.Intern("bread") != a {
		t.Fatal("re-intern changed id")
	}
	if d.Name(a) != "bread" || d.Name(b) != "milk" {
		t.Fatal("Name lookup broken")
	}
	if d.Name(Item(99)) != "item-99" {
		t.Fatalf("unknown id name = %q", d.Name(Item(99)))
	}
	if _, ok := d.Lookup("eggs"); ok {
		t.Fatal("Lookup invented an id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if s := d.Names([]Item{a, b}); s != "bread + milk" {
		t.Fatalf("Names = %q", s)
	}
}

func TestReadNamedRoundTrip(t *testing.T) {
	in := "bread milk\nmilk eggs\n\nbread\n"
	dict := NewDictionary()
	db, err := ReadNamed(strings.NewReader(in), dict)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	if dict.Len() != 3 {
		t.Fatalf("dictionary has %d names, want 3", dict.Len())
	}
	var buf bytes.Buffer
	if err := db.WriteNamed(&buf, dict); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNamed(strings.NewReader(buf.String()), dict)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Fatal("round trip changed shape")
	}
}

func TestReadNamedNeedsDictionary(t *testing.T) {
	if _, err := ReadNamed(strings.NewReader("a b"), nil); err == nil {
		t.Fatal("nil dictionary accepted")
	}
}
