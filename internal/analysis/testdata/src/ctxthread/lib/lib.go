// Hit and non-hit cases for ctxthread in a library (non-main) package.
package lib

import "context"

func blocked(ctx context.Context) error { <-ctx.Done(); return ctx.Err() }

// MineContext is the context-threading entry point.
func MineContext(ctx context.Context, n int) error { return blocked(ctx) }

// Mine is the sanctioned convenience wrapper: Background is allowed
// exactly here because the Context sibling exists.
func Mine(n int) error { return MineContext(context.Background(), n) }

// breaksChain owns a ctx but forks a fresh root — the caller's
// cancellation no longer reaches the work.
func breaksChain(ctx context.Context, n int) error {
	return MineContext(context.Background(), n) // want `context.Background inside breaksChain, which already has a ctx parameter "ctx"`
}

// orphanRoot has no Context sibling, so Background is a missing
// parameter, not a wrapper.
func orphanRoot(n int) error {
	return MineContext(context.TODO(), n) // want `context.TODO in library function orphanRoot`
}

// CountDropped takes a context and ignores it.
func CountDropped(ctx context.Context, n int) int { // want `CountDropped takes a context.Context "ctx" it never uses`
	return n * 2
}

// CountUsed threads its context.
func CountUsed(ctx context.Context, n int) (int, error) {
	if err := blocked(ctx); err != nil {
		return 0, err
	}
	return n * 2, nil
}

// anonymous context parameters are an explicit opt-out (interface
// conformance), never flagged.
func conformsToInterface(_ context.Context, n int) int { return n }
