// Command fimcheck cross-validates every miner in the repository: it runs
// all algorithms on the same database and verifies they return identical
// frequent-itemset collections (same sets, same supports). Any
// disagreement is printed with an itemset-level diff.
//
// Usage:
//
//	fimcheck -dataset chess -scale 0.1 -minsup 0.8
//	fimcheck -input retail.dat -minsup 0.02
//	fimcheck -random 12 -minsup 5        # 12-item random DB vs brute force
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gpapriori"
)

func main() {
	var (
		input  = flag.String("input", "", "FIMI .dat file")
		dsName = flag.String("dataset", "", "generated paper dataset name")
		scale  = flag.Float64("scale", 0.05, "scale of the generated dataset")
		random = flag.Int("random", 0, "use a random database with this many items instead")
		seed   = flag.Int64("seed", 1, "seed for -random")
		minsup = flag.Float64("minsup", 0, "minimum support: ratio in (0,1) or absolute count")
	)
	flag.Parse()
	if err := run(os.Stdout, *input, *dsName, *scale, *random, *seed, *minsup); err != nil {
		fmt.Fprintln(os.Stderr, "fimcheck:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, input, dsName string, scale float64, random int, seed int64, minsup float64) error {
	var db *gpapriori.Database
	var err error
	switch {
	case input != "":
		f, err2 := os.Open(input)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		db, err = gpapriori.ReadDatabase(f)
	case dsName != "":
		db, err = gpapriori.GeneratePaperDataset(dsName, scale)
	case random > 0:
		db = randomDB(random, seed)
	default:
		return fmt.Errorf("need -input, -dataset or -random")
	}
	if err != nil {
		return err
	}
	if minsup <= 0 {
		return fmt.Errorf("-minsup is required")
	}
	cfg := gpapriori.Config{}
	if minsup < 1 {
		cfg.RelativeSupport = minsup
	} else {
		cfg.MinSupport = int(minsup)
	}

	st := db.Stats()
	fmt.Fprintf(w, "database: %d transactions, %d items, avg length %.1f\n",
		st.NumTrans, st.NumItems, st.AvgLength)

	var ref *gpapriori.Result
	ok := true
	for _, algo := range gpapriori.Algorithms() {
		c := cfg
		c.Algorithm = algo
		res, err := gpapriori.Mine(db, c)
		if err != nil {
			return fmt.Errorf("%s: %w", algo, err)
		}
		status := "OK"
		if ref == nil {
			ref = res
			status = "reference"
		} else if !sameResults(ref, res) {
			status = "MISMATCH"
			ok = false
			printDiff(w, ref, res)
		}
		fmt.Fprintf(w, "  %-14s %7d itemsets  %8.4gs  %s\n", algo, res.Len(), res.TotalSeconds(), status)
	}
	if !ok {
		return fmt.Errorf("miners disagree")
	}
	fmt.Fprintln(w, "all algorithms agree")
	return nil
}

func sameResults(a, b *gpapriori.Result) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Itemsets {
		x, y := a.Itemsets[i], b.Itemsets[i]
		if x.Support != y.Support || len(x.Items) != len(y.Items) {
			return false
		}
		for j := range x.Items {
			if x.Items[j] != y.Items[j] {
				return false
			}
		}
	}
	return true
}

func printDiff(w io.Writer, ref, got *gpapriori.Result) {
	key := func(s gpapriori.Itemset) string { return fmt.Sprint(s.Items) }
	refM := map[string]int{}
	for _, s := range ref.Itemsets {
		refM[key(s)] = s.Support
	}
	gotM := map[string]int{}
	for _, s := range got.Itemsets {
		gotM[key(s)] = s.Support
		if sup, ok := refM[key(s)]; !ok {
			fmt.Fprintf(w, "    only in %s: %v:%d\n", got.Algorithm, s.Items, s.Support)
		} else if sup != s.Support {
			fmt.Fprintf(w, "    support differs for %v: %s=%d %s=%d\n",
				s.Items, ref.Algorithm, sup, got.Algorithm, s.Support)
		}
	}
	for _, s := range ref.Itemsets {
		if _, ok := gotM[key(s)]; !ok {
			fmt.Fprintf(w, "    missing from %s: %v:%d\n", got.Algorithm, s.Items, s.Support)
		}
	}
}

// randomDB builds a deterministic random database for quick checks.
func randomDB(items int, seed int64) *gpapriori.Database {
	// A small linear-congruential stream keeps this free of package
	// dependencies and deterministic across platforms.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 33
	}
	rows := make([][]gpapriori.Item, 200)
	for i := range rows {
		for j := 0; j < items; j++ {
			if next()%3 == 0 {
				rows[i] = append(rows[i], gpapriori.Item(j))
			}
		}
	}
	return gpapriori.NewDatabase(rows)
}
