package apriori

import (
	"testing"

	"gpapriori/internal/bitset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func TestParallelBitsetMatchesOracle(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for seed := int64(0); seed < 3; seed++ {
			db := gen.Random(80, 12, 0.4, seed)
			want := oracle.Mine(db, 10)
			c := NewParallelBitset(db, bitset.PopcountHardware, workers)
			got, err := Mine(db, 10, c, Config{})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if !got.Equal(want) {
				t.Fatalf("workers=%d seed=%d diff: %v", workers, seed, got.Diff(want))
			}
		}
	}
}

func TestParallelBitsetMatchesSerialOnDense(t *testing.T) {
	cfg := gen.Chess()
	cfg.NumTrans = 150
	db := gen.AttributeValue(cfg)
	minSup := db.AbsoluteSupport(0.85)
	serial, err := Mine(db, minSup, NewCPUBitset(db, bitset.PopcountHardware), Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(db, minSup, NewParallelBitset(db, bitset.PopcountHardware, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Fatalf("diff: %v", par.Diff(serial))
	}
}

func TestParallelBitsetFewerCandidatesThanWorkers(t *testing.T) {
	db := gen.Small()
	c := NewParallelBitset(db, bitset.PopcountHardware, 64)
	got, err := Mine(db, 2, c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(oracle.Mine(db, 2)) {
		t.Fatal("tiny-generation parallel run differs")
	}
}

func TestParallelBitsetDefaultWorkers(t *testing.T) {
	db := gen.Small()
	c := NewParallelBitset(db, bitset.PopcountTable8, 0)
	if c.workers < 1 {
		t.Fatalf("default workers = %d", c.workers)
	}
	if c.Name() != "ParallelCPU(bitset,table8)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCountDistributionMatchesOracle(t *testing.T) {
	for _, workers := range []int{1, 3, 7} {
		db := gen.Random(90, 12, 0.4, 21)
		c, err := NewCountDistribution(db, workers)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Mine(db, 12, c, Config{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.Equal(oracle.Mine(db, 12)) {
			t.Fatalf("workers=%d diff vs oracle", workers)
		}
	}
}

func TestCountDistributionName(t *testing.T) {
	db := gen.Small()
	c, err := NewCountDistribution(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CountDistribution(4 stripes)" {
		t.Fatalf("Name = %q", c.Name())
	}
}

func TestCountDistributionDefaultWorkers(t *testing.T) {
	db := gen.Small()
	c, err := NewCountDistribution(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.stripes) < 1 {
		t.Fatal("no stripes")
	}
}
