// Package eclat implements the Eclat frequent-itemset miner (Zaki et al.,
// KDD'97): a depth-first search over prefix equivalence classes using the
// vertical tidset layout, with the diffset optimization of Zaki & Gouda
// (SIGKDD'03) as an option. The paper lists Eclat alongside Apriori as the
// candidate-generation family it accelerates and names equivalence-class
// clustering as the classical candidate-join GPApriori's complete
// intersection replaces, so Eclat is part of the baseline roster.
package eclat

import (
	"fmt"

	"gpapriori/internal/bitset"
	"gpapriori/internal/dataset"
	"gpapriori/internal/vertical"
)

// Mode selects the vertical set representation used during the DFS.
type Mode int

const (
	// Tidsets intersects plain transaction-id lists.
	Tidsets Mode = iota
	// Diffsets keeps, for each itemset P∪{x}, the set d(Px) = t(P) \ t(x);
	// support(Px) = support(P) − |d(Px)|. Diffsets shrink as the search
	// deepens, the opposite of tidsets — the Zaki–Gouda optimization.
	Diffsets
)

// String names the mode for reports.
func (m Mode) String() string {
	if m == Diffsets {
		return "diffsets"
	}
	return "tidsets"
}

// Mine runs Eclat over db at the given absolute minimum support.
func Mine(db *dataset.DB, minSupport int, mode Mode) (*dataset.ResultSet, error) {
	if minSupport < 1 {
		return nil, fmt.Errorf("eclat: minimum support %d must be ≥1", minSupport)
	}
	v := vertical.BuildTidsets(db)
	rs := &dataset.ResultSet{}

	// Root equivalence class: frequent single items in ascending order.
	type member struct {
		item dataset.Item
		set  bitset.Tidset // tidset, or diffset relative to the prefix
		sup  int
	}
	var root []member
	for item, list := range v.Lists {
		if len(list) >= minSupport {
			root = append(root, member{item: dataset.Item(item), set: list, sup: len(list)})
			rs.Add([]dataset.Item{dataset.Item(item)}, len(list))
		}
	}

	// recurse extends prefix (whose members are the class) depth-first.
	var recurse func(prefix []dataset.Item, class []member)
	recurse = func(prefix []dataset.Item, class []member) {
		for i, a := range class {
			newPrefix := append(prefix, a.item)
			var next []member
			for _, b := range class[i+1:] {
				var m member
				m.item = b.item
				switch mode {
				case Tidsets:
					m.set = a.set.Intersect(b.set)
					m.sup = len(m.set)
				case Diffsets:
					if len(prefix) == 0 {
						// First level: d(ab) = t(a) \ t(b).
						m.set = a.set.Diff(b.set)
					} else {
						// d(Pab) = d(Pb) \ d(Pa).
						m.set = b.set.Diff(a.set)
					}
					m.sup = a.sup - len(m.set)
				}
				if m.sup >= minSupport {
					rs.Add(append(newPrefix, b.item), m.sup)
					next = append(next, m)
				}
			}
			if len(next) > 1 {
				recurse(newPrefix, next)
			} else if len(next) == 1 {
				// A singleton class cannot extend further but its itemset
				// was already emitted above.
				_ = next
			}
			prefix = newPrefix[:len(newPrefix)-1]
		}
	}
	recurse(make([]dataset.Item, 0, 16), root)
	return rs, nil
}

// MineRelative is Mine with a relative support threshold in (0,1].
func MineRelative(db *dataset.DB, rel float64, mode Mode) (*dataset.ResultSet, error) {
	return Mine(db, db.AbsoluteSupport(rel), mode)
}
