// Package resultio serializes mined frequent-itemset collections to disk
// and back. Long mining runs (or the fimbench sweeps) produce result sets
// worth caching: the text format is one itemset per line — space-
// separated items, a colon, the absolute support — stable, diffable, and
// independent of mining order.
package resultio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gpapriori/internal/dataset"
)

// Write serializes rs in canonical order.
func Write(w io.Writer, rs *dataset.ResultSet) error {
	rs.Sort()
	bw := bufio.NewWriter(w)
	for _, s := range rs.Sets {
		for i, it := range s.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(" : " + strconv.Itoa(s.Support) + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the Write format. Malformed lines are errors (results are
// machine-written; silent skips would hide corruption).
func Read(r io.Reader) (*dataset.ResultSet, error) {
	rs := &dataset.ResultSet{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, " : ", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("resultio: line %d: missing ' : ' separator", line)
		}
		sup, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("resultio: line %d: bad support: %v", line, err)
		}
		fields := strings.Fields(parts[0])
		if len(fields) == 0 {
			return nil, fmt.Errorf("resultio: line %d: empty itemset", line)
		}
		items := make([]dataset.Item, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("resultio: line %d: bad item %q: %v", line, f, err)
			}
			items[i] = dataset.Item(v)
		}
		rs.Add(items, sup)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Verify checks a stored result set against a database: every itemset's
// support must equal its exact support in db. Returns the first
// discrepancy as an error (nil when everything matches) — how a cached
// result is validated before reuse.
func Verify(rs *dataset.ResultSet, db *dataset.DB) error {
	for _, s := range rs.Sets {
		want := 0
		for _, tr := range db.Transactions() {
			if tr.ContainsAll(s.Items) {
				want++
			}
		}
		if s.Support != want {
			return fmt.Errorf("resultio: itemset %v stored support %d, database says %d",
				s.Items, s.Support, want)
		}
	}
	return nil
}
