// The peer health-probe loop, both ways: the sanctioned shape from
// internal/peer — a ticker loop whose ctx.Done case returns, making
// Exit reachable — and the tempting shortcut that drops the Done case
// and leaks the prober past Stop. Pinning both here means a future
// refactor of the probe loop cannot silently regress into the leak.
package peerprobe

import (
	"context"
	"time"
)

type prober struct {
	interval time.Duration
}

func (p *prober) probeOnce(ctx context.Context) {}

// startProbes is the goroutine-termination idiom every probe loop in
// this repo must use: select on ctx.Done in the same loop that waits
// on the ticker, return on cancellation.
func (p *prober) startProbes(ctx context.Context) {
	go func() {
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				p.probeOnce(ctx)
			}
		}
	}()
}

// startProbesLeaky drops the Done case: the loop has no exit edge, the
// prober outlives every Stop, and goroleak must say so.
func (p *prober) startProbesLeaky(ctx context.Context) {
	go func() { // want `goroutine has no termination path`
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			<-t.C
			p.probeOnce(ctx)
		}
	}()
}
