#!/bin/sh
# Full verification: vet, then the whole test suite under the race
# detector (this includes the fault-injection and failover tests, which
# exercise retry/failover paths concurrently with gpusim's goroutine
# threads).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...

# Benchmark smoke: every benchmark (including the pooled-pipeline and
# prefix-cache macro benchmarks) must run one iteration cleanly.
go test -run='^$' -bench=. -benchtime=1x ./...
