package postprocess

import (
	"testing"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gen"
	"gpapriori/internal/oracle"
)

func TestClosedDefinition(t *testing.T) {
	db := gen.Small()
	full := oracle.Mine(db, 2)
	closed := Closed(full)

	index := map[string]int{}
	for _, s := range full.Sets {
		index[s.Key()] = s.Support
	}
	inClosed := map[string]bool{}
	for _, s := range closed.Sets {
		inClosed[s.Key()] = true
	}
	// Every itemset in `closed` must have no superset of equal support;
	// every itemset excluded must have one.
	for _, s := range full.Sets {
		hasEqualSuper := false
		for _, super := range full.Sets {
			if len(super.Items) == len(s.Items)+1 &&
				super.Support == s.Support && contains(super.Items, s.Items) {
				hasEqualSuper = true
				break
			}
		}
		if inClosed[s.Key()] == hasEqualSuper {
			t.Fatalf("itemset %v closed=%v but hasEqualSuper=%v",
				s.Items, inClosed[s.Key()], hasEqualSuper)
		}
	}
}

func TestMaximalDefinition(t *testing.T) {
	db := gen.Small()
	full := oracle.Mine(db, 2)
	maximal := Maximal(full)
	inMax := map[string]bool{}
	for _, s := range maximal.Sets {
		inMax[s.Key()] = true
	}
	for _, s := range full.Sets {
		hasFreqSuper := false
		for _, super := range full.Sets {
			if len(super.Items) == len(s.Items)+1 && contains(super.Items, s.Items) {
				hasFreqSuper = true
				break
			}
		}
		if inMax[s.Key()] == hasFreqSuper {
			t.Fatalf("itemset %v maximal=%v but hasFreqSuper=%v",
				s.Items, inMax[s.Key()], hasFreqSuper)
		}
	}
}

func TestMaximalSubsetOfClosed(t *testing.T) {
	// Maximal ⊆ closed always (a maximal set has no frequent superset at
	// all, hence none with equal support).
	db := gen.Random(120, 14, 0.4, 5)
	full := oracle.Mine(db, 15)
	closed := Closed(full)
	maximal := Maximal(full)
	inClosed := map[string]bool{}
	for _, s := range closed.Sets {
		inClosed[s.Key()] = true
	}
	for _, s := range maximal.Sets {
		if !inClosed[s.Key()] {
			t.Fatalf("maximal set %v not closed", s.Items)
		}
	}
	if maximal.Len() > closed.Len() || closed.Len() > full.Len() {
		t.Fatalf("sizes violate maximal ≤ closed ≤ full: %d, %d, %d",
			maximal.Len(), closed.Len(), full.Len())
	}
}

func TestDenseDataCompresses(t *testing.T) {
	// On conformity-correlated dense data the closed/maximal summaries
	// must be much smaller than the full collection.
	cfg := gen.Chess()
	cfg.NumTrans = 200
	db := gen.AttributeValue(cfg)
	full := oracle.Mine(db, db.AbsoluteSupport(0.8))
	if full.Len() < 50 {
		t.Skipf("only %d itemsets; dataset too small to judge compression", full.Len())
	}
	maximal := Maximal(full)
	if r := CompressionRatio(full, maximal); r > 0.5 {
		t.Fatalf("maximal compression ratio %.2f, expected < 0.5 on dense data", r)
	}
}

func TestRestoreFromClosedLossless(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		db := gen.Random(80, 10, 0.45, seed)
		minSup := 10
		full := oracle.Mine(db, minSup)
		closed := Closed(full)
		restored := RestoreFromClosed(closed, minSup)
		if !restored.Equal(full) {
			t.Fatalf("seed %d: restore not lossless: %v", seed, restored.Diff(full))
		}
	}
}

func TestCompressionRatioEmpty(t *testing.T) {
	if r := CompressionRatio(&dataset.ResultSet{}, &dataset.ResultSet{}); r != 1 {
		t.Fatalf("empty ratio = %v", r)
	}
}

func TestContains(t *testing.T) {
	cases := []struct {
		sup, sub []dataset.Item
		want     bool
	}{
		{[]dataset.Item{1, 2, 3}, []dataset.Item{1, 3}, true},
		{[]dataset.Item{1, 2, 3}, []dataset.Item{}, true},
		{[]dataset.Item{1, 2, 3}, []dataset.Item{4}, false},
		{[]dataset.Item{1, 3}, []dataset.Item{1, 2, 3}, false},
	}
	for _, c := range cases {
		if got := contains(c.sup, c.sub); got != c.want {
			t.Errorf("contains(%v, %v) = %v", c.sup, c.sub, got)
		}
	}
}
