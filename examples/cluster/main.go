// Scaling study: GPApriori on the paper's actual platform and beyond.
// The experimental machine was a Tesla S1070 with four T10 GPUs, of which
// the paper used one and left multi-GPU, CPU/GPU co-processing and GPU
// clusters as future work. This example runs all three extensions on one
// workload and prints the scaling picture, including where the network
// stops it.
package main

import (
	"fmt"
	"log"

	"gpapriori/internal/apriori"
	"gpapriori/internal/cluster"
	"gpapriori/internal/core"
	"gpapriori/internal/gen"
	"gpapriori/internal/kernels"
)

func main() {
	db, err := gen.Paper("accidents", 0.02)
	if err != nil {
		log.Fatal(err)
	}
	minSup := db.AbsoluteSupport(0.45)
	kopt := kernels.Options{BlockSize: 64, Preload: true, Unroll: 4}
	fmt.Printf("workload: accidents stand-in, %d transactions, minsup %d\n\n", db.Len(), minSup)

	// 1) The S1070's four T10s, used at last.
	fmt.Println("multi-GPU (one S1070 chassis):")
	fmt.Printf("  %-6s %14s %10s\n", "GPUs", "pool_time_s", "speedup")
	var base float64
	for _, gpus := range []int{1, 2, 4} {
		m, err := core.NewMulti(db, core.MultiOptions{Devices: gpus, Kernel: kopt})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Mine(minSup, apriori.Config{})
		if err != nil {
			log.Fatal(err)
		}
		if gpus == 1 {
			base = rep.DeviceSeconds
		}
		fmt.Printf("  %-6d %14.4g %10.2f\n", gpus, rep.DeviceSeconds, base/rep.DeviceSeconds)
	}

	// 2) Hybrid CPU/GPU co-processing.
	fmt.Println("\nhybrid CPU/GPU (one GPU + host share of each generation):")
	fmt.Printf("  %-10s %14s %14s\n", "cpu_share", "cpu_count_s", "device_s")
	for _, share := range []float64{0, 0.25, 0.5} {
		m, err := core.NewMulti(db, core.MultiOptions{Devices: 1, Kernel: kopt, HybridCPUShare: share})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := m.Mine(minSup, apriori.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10.2f %14.4g %14.4g\n", share, rep.CPUCountSeconds, rep.DeviceSeconds)
	}

	// 3) A GPU cluster: device time shrinks with nodes, but the broadcast
	// and per-generation scatter/gather put a floor under the total.
	fmt.Println("\nGPU cluster (1 GPU per node):")
	fmt.Printf("  %-8s %-6s %12s %12s %12s %12s\n",
		"network", "nodes", "broadcast_s", "network_s", "device_s", "total_s")
	for _, net := range []cluster.NetworkConfig{cluster.GigabitEthernet(), cluster.InfinibandQDR()} {
		for _, nodes := range []int{1, 4, 8} {
			m, err := cluster.New(db, cluster.Config{
				Nodes: nodes, GPUsPerNode: 1, Network: net, Kernel: kopt,
			})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := m.Mine(minSup, apriori.Config{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %-6d %12.4g %12.4g %12.4g %12.4g\n",
				net.Name, nodes, rep.BroadcastSeconds, rep.NetworkSeconds,
				rep.DeviceSeconds, rep.TotalSeconds())
		}
	}
	fmt.Println("\nall times beyond the host are modeled (gpusim Tesla T10 + link models);")
	fmt.Println("see DESIGN.md §2 for the calibration and EXPERIMENTS.md for discussion.")
}
