// The prefix-class kernel variant: candidate generation joins within
// (k−1)-prefix equivalence classes, so candidates of one generation
// arrive in contiguous runs sharing all but their last item. The paper's
// complete intersection re-reads all k first-generation vectors for every
// candidate (k global loads per word per candidate); this variant
// materializes each class's shared intersection once in device scratch
// (phase A) and then counts every member as popcount(class ∧ last)
// (phase B, 2 loads per word). For a class of m candidates the traffic
// drops from m·k to (k−1) + 1 + 2m words per vector word, a win exactly
// when m·(k−2) > k — the gpusim timing model credits the saved loads
// automatically because it prices the loads the kernel actually issues.
//
// Classes where the saving is non-positive are counted by the complete
// kernel in the same generation, and the whole generation falls back to
// complete intersection when even one class vector cannot fit the scratch
// budget — mirroring the paper's Section III choice of recomputing
// intersections rather than holding intermediate generations in device
// memory.
package kernels

import (
	"fmt"

	"gpapriori/internal/dataset"
	"gpapriori/internal/gpusim"
)

// classRun is one contiguous (k−1)-prefix class: candidates [lo,hi).
type classRun struct {
	lo, hi int
}

// splitClasses scans the contiguous prefix classes of one generation and
// partitions them by the profitability rule m·(k−2) > k.
func splitClasses(cands [][]dataset.Item, k int) (profitable []classRun, rest []int) {
	for lo := 0; lo < len(cands); {
		hi := lo + 1
	scan:
		for hi < len(cands) {
			for j := 0; j < k-1; j++ {
				if cands[hi][j] != cands[lo][j] {
					break scan
				}
			}
			hi++
		}
		if m := hi - lo; m*(k-2) > k {
			profitable = append(profitable, classRun{lo, hi})
		} else {
			for i := lo; i < hi; i++ {
				rest = append(rest, i)
			}
		}
		lo = hi
	}
	return profitable, rest
}

// supportCountsPrefix computes one generation's supports with the
// two-phase prefix-class kernels, delegating unprofitable classes to the
// complete kernel. Candidates are pre-validated by SupportCounts.
func (d *DeviceDB) supportCountsPrefix(cands [][]dataset.Item, k int, opt Options) ([]int, error) {
	classes, rest := splitClasses(cands, k)
	if len(classes) == 0 {
		return d.supportCountsComplete(cands, k, opt)
	}

	// Scratch budget: free device memory (minus slack for the phase
	// buffers' alignment), optionally capped by the options.
	free := d.dev.MemWords() - d.dev.AllocatedWords() - 64
	if opt.PrefixScratchWords > 0 && free > opt.PrefixScratchWords {
		free = opt.PrefixScratchWords
	}
	words := d.wordsPerVec
	// The smallest chunk is one class: its vector, its prefix ids, its
	// members' pair metadata and outputs.
	minNeed := words + (k - 1) + 2*(classes[0].hi-classes[0].lo) + (classes[0].hi - classes[0].lo)
	if minNeed > free {
		return d.supportCountsComplete(cands, k, opt)
	}

	out := make([]int, len(cands))

	// Chunk profitable classes to the scratch budget.
	for start := 0; start < len(classes); {
		end := start
		need := 0
		for end < len(classes) {
			c := classes[end]
			m := c.hi - c.lo
			n := need + words + (k - 1) + 3*m
			if end > start && n > free {
				break
			}
			need = n
			end++
		}
		if err := d.prefixChunk(cands, classes[start:end], k, opt, out); err != nil {
			return nil, err
		}
		start = end
	}

	// Unprofitable classes ride the complete kernel as one batch.
	if len(rest) > 0 {
		batch := make([][]dataset.Item, len(rest))
		for i, idx := range rest {
			batch[i] = cands[idx]
		}
		sups, err := d.supportCountsComplete(batch, k, opt)
		if err != nil {
			return nil, err
		}
		for i, idx := range rest {
			out[idx] = sups[i]
		}
	}
	return out, nil
}

// prefixChunk runs phases A and B over one chunk of classes, writing each
// candidate's support into out at its original index.
func (d *DeviceDB) prefixChunk(cands [][]dataset.Item, classes []classRun, k int, opt Options, out []int) error {
	nClasses := len(classes)
	nCands := 0
	for _, c := range classes {
		nCands += c.hi - c.lo
	}

	// Host-side flattening: per-class prefix ids, per-candidate
	// (class, last item) metadata.
	prefixIDs := make([]uint32, 0, nClasses*(k-1))
	pairMeta := make([]uint32, 0, 2*nCands)
	candIdx := make([]int, 0, nCands)
	for ci, c := range classes {
		for _, item := range cands[c.lo][:k-1] {
			prefixIDs = append(prefixIDs, uint32(item))
		}
		for i := c.lo; i < c.hi; i++ {
			pairMeta = append(pairMeta, uint32(ci), uint32(cands[i][k-1]))
			candIdx = append(candIdx, i)
		}
	}

	words := d.wordsPerVec
	classBuf, err := d.dev.Malloc(nClasses * words)
	if err != nil {
		return fmt.Errorf("kernels: class scratch: %w", err)
	}
	prefixBuf, err := d.dev.Malloc(len(prefixIDs))
	if err != nil {
		return fmt.Errorf("kernels: prefix upload: %w", err)
	}
	pairBuf, err := d.dev.Malloc(len(pairMeta))
	if err != nil {
		return fmt.Errorf("kernels: pair upload: %w", err)
	}
	outBuf, err := d.dev.Malloc(nCands)
	if err != nil {
		return fmt.Errorf("kernels: support buffer: %w", err)
	}
	defer d.dev.FreeAllAbove(d.vectors)

	if err := d.dev.TryCopyToDevice(prefixBuf, prefixIDs); err != nil {
		return fmt.Errorf("kernels: prefix upload: %w", err)
	}
	if err := d.dev.TryCopyToDevice(pairBuf, pairMeta); err != nil {
		return fmt.Errorf("kernels: pair upload: %w", err)
	}

	vectors := d.vectors

	// Phase A: one block per class materializes the shared (k−1)-prefix
	// intersection into classBuf.
	sharedA := 0
	if opt.Preload {
		sharedA = k - 1
	}
	cfgA := gpusim.LaunchConfig{Grid: nClasses, Block: opt.BlockSize, SharedWords: sharedA}
	_, lerr := d.dev.TryLaunch(cfgA, func(ctx *gpusim.Ctx) {
		cls := ctx.BlockIdx
		tid := ctx.ThreadIdx
		if opt.Preload {
			if tid < k-1 {
				ctx.StoreShared(tid, ctx.LoadGlobal(prefixBuf, cls*(k-1)+tid))
			}
			ctx.SyncThreads()
		}
		itemAt := func(j int) int {
			if opt.Preload {
				return int(ctx.LoadShared(j))
			}
			return int(ctx.LoadGlobal(prefixBuf, cls*(k-1)+j))
		}
		steps := 0
		for w := tid; w < words; w += ctx.BlockDim {
			acc := ctx.LoadGlobal(vectors, itemAt(0)*words+w)
			for j := 1; j < k-1; j++ {
				acc &= ctx.LoadGlobal(vectors, itemAt(j)*words+w)
			}
			ctx.Compute(k - 2) // the AND chain
			ctx.StoreGlobal(classBuf, cls*words+w, acc)
			steps++
		}
		ctx.Compute((steps + opt.Unroll - 1) / opt.Unroll)
	}, opt.DeadlineSec)
	if lerr != nil {
		return fmt.Errorf("kernels: prefix phase-A launch: %w", lerr)
	}

	// Phase B: one block per candidate counts popcount(class ∧ last) with
	// the Figure 5 tree reduction.
	sharedB := opt.BlockSize
	if opt.Preload {
		sharedB += 2
	}
	cfgB := gpusim.LaunchConfig{Grid: nCands, Block: opt.BlockSize, SharedWords: sharedB}
	_, lerr = d.dev.TryLaunch(cfgB, func(ctx *gpusim.Ctx) {
		cand := ctx.BlockIdx
		tid := ctx.ThreadIdx
		metaShared := opt.BlockSize
		if opt.Preload {
			if tid < 2 {
				ctx.StoreShared(metaShared+tid, ctx.LoadGlobal(pairBuf, cand*2+tid))
			}
			ctx.SyncThreads()
		}
		metaAt := func(j int) int {
			if opt.Preload {
				return int(ctx.LoadShared(metaShared + j))
			}
			return int(ctx.LoadGlobal(pairBuf, cand*2+j))
		}
		sum := uint32(0)
		steps := 0
		for w := tid; w < words; w += ctx.BlockDim {
			acc := ctx.LoadGlobal(classBuf, metaAt(0)*words+w) &
				ctx.LoadGlobal(vectors, metaAt(1)*words+w)
			ctx.Compute(1) // the single AND
			sum += ctx.Popc(acc)
			steps++
		}
		ctx.Compute((steps + opt.Unroll - 1) / opt.Unroll)

		ctx.StoreShared(tid, sum)
		ctx.SyncThreads()
		for stride := ctx.BlockDim / 2; stride > 0; stride /= 2 {
			if tid < stride {
				ctx.StoreShared(tid, ctx.LoadShared(tid)+ctx.LoadShared(tid+stride))
			}
			ctx.SyncThreads()
		}
		if tid == 0 {
			ctx.StoreGlobal(outBuf, cand, ctx.LoadShared(0))
		}
	}, opt.DeadlineSec)
	if lerr != nil {
		return fmt.Errorf("kernels: prefix phase-B launch: %w", lerr)
	}

	out32 := make([]uint32, nCands)
	if err := d.dev.TryCopyFromDevice(out32, outBuf); err != nil {
		return fmt.Errorf("kernels: support download: %w", err)
	}
	for i, v := range out32 {
		out[candIdx[i]] = int(v)
	}
	return nil
}
