package trie

import (
	"testing"

	"gpapriori/internal/dataset"
)

func TestArenaNewNode(t *testing.T) {
	var a Arena
	// Cross several chunk boundaries and verify every node keeps its
	// identity and fields.
	const n = 3*arenaChunk + 17
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = a.NewNode(dataset.Item(i), i%7)
	}
	for i, nd := range nodes {
		if nd.Item != dataset.Item(i) || nd.Depth != i%7 || nd.Support != -1 || nd.Children != nil {
			t.Fatalf("node %d corrupted: %+v", i, *nd)
		}
	}
	// Distinct nodes must not alias.
	nodes[0].Support = 99
	if nodes[1].Support != -1 {
		t.Fatal("adjacent arena nodes alias")
	}
}

func TestArenaNodePtrs(t *testing.T) {
	var a Arena
	s1 := a.NodePtrs(3)
	s2 := a.NodePtrs(5)
	if len(s1) != 0 || cap(s1) != 3 || len(s2) != 0 || cap(s2) != 5 {
		t.Fatalf("bad shapes: cap(s1)=%d cap(s2)=%d", cap(s1), cap(s2))
	}
	n1, n2 := a.NewNode(1, 1), a.NewNode(2, 1)
	s1 = append(s1, n1, n2, n1)
	s2 = append(s2, n2)
	// Full capacity on s1 must not spill into s2's slab region.
	if s2[0] != n2 || s1[2] != n1 {
		t.Fatal("pointer slabs overlap")
	}
	// Appending past capacity must reallocate, not clobber the slab.
	s1 = append(s1, n2)
	if s2[0] != n2 {
		t.Fatal("append past cap clobbered a sibling slice")
	}
	// Oversized request gets its own allocation and still works.
	big := a.NodePtrs(2 * arenaChunk)
	if cap(big) != 2*arenaChunk {
		t.Fatalf("oversized cap %d", cap(big))
	}
}

func TestArenaItems(t *testing.T) {
	var a Arena
	s1 := a.Items(4)
	s2 := a.Items(4)
	s1 = append(s1, 1, 2, 3, 4)
	s2 = append(s2, 9, 9, 9, 9)
	if s1[0] != 1 || s1[3] != 4 {
		t.Fatalf("item slabs overlap: %v", s1)
	}
	big := a.Items(arenaChunk)
	if cap(big) != arenaChunk {
		t.Fatalf("oversized cap %d", cap(big))
	}
}

func TestArenaReset(t *testing.T) {
	var a Arena
	old := a.NewNode(7, 1)
	a.Reset()
	// Post-reset allocations come from fresh chunks; the old node is
	// untouched as long as someone still references it.
	fresh := a.NewNode(8, 2)
	if old.Item != 7 || fresh.Item != 8 {
		t.Fatal("reset corrupted live or fresh nodes")
	}
}

// buildTestTrie makes a small trie with known frequent sets.
func buildTestTrie() *Trie {
	tr := New()
	tr.Insert([]dataset.Item{1}).Support = 10
	tr.Insert([]dataset.Item{2}).Support = 8
	tr.Insert([]dataset.Item{3}).Support = 2 // infrequent at minsup 5
	tr.Insert([]dataset.Item{1, 2}).Support = 6
	tr.Insert([]dataset.Item{1, 3}).Support = 1
	tr.Insert([]dataset.Item{1, 2, 3}).Support = 5
	return tr
}

func TestFrequentPackedMatchesFrequent(t *testing.T) {
	tr := buildTestTrie()
	for _, minsup := range []int{1, 5, 7, 100} {
		want := tr.Frequent(minsup)
		got := tr.FrequentPacked(minsup)
		if !got.Equal(want) {
			t.Fatalf("minsup=%d: packed %v != %v", minsup, got.Sets, want.Sets)
		}
	}
}

func TestFrequentPackedDoesNotAliasTrie(t *testing.T) {
	tr := buildTestTrie()
	rs := tr.FrequentPacked(5)
	// Mutating the trie after extraction must not change the results.
	var scramble func(n *Node)
	scramble = func(n *Node) {
		for _, c := range n.Children {
			c.Item = 999
			scramble(c)
		}
	}
	scramble(tr.Root)
	for _, s := range rs.Sets {
		for _, it := range s.Items {
			if it == 999 {
				t.Fatal("FrequentPacked result aliases trie memory")
			}
		}
	}
}
