// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section V): Table 1 (algorithm
// roster), Table 2 (dataset statistics) and Figure 6(a)–(d) (runtime and
// speedup versus minimum support on four datasets).
//
// Times reported for CPU algorithms are measured wall-clock on the host;
// times for GPApriori are measured host candidate-generation time plus the
// gpusim timing model's device time (see DESIGN.md §2). Speedups are
// reported relative to the Borgelt baseline, exactly as in Figure 6, and
// additionally GPApriori-vs-CPU_TEST (the paper's GPU-vs-equivalent-CPU
// axis).
package bench

import (
	"fmt"
	"io"
	"time"

	"gpapriori/internal/apriori"
	"gpapriori/internal/bitset"
	"gpapriori/internal/core"
	"gpapriori/internal/dataset"
	"gpapriori/internal/eclat"
	"gpapriori/internal/fpgrowth"
	"gpapriori/internal/gen"
	"gpapriori/internal/kernels"
)

// AlgoNames in the order of the paper's Table 1, plus the background
// algorithms (Eclat, FP-Growth) used by the Section II ablation.
const (
	AlgoGPApriori = "GPApriori"
	AlgoCPUTest   = "CPU_TEST"
	AlgoBorgelt   = "Borgelt"
	AlgoBodon     = "Bodon"
	AlgoGoethals  = "Goethals"
	AlgoEclat     = "Eclat"
	AlgoFPGrowth  = "FP-Growth"
)

// Table1Rows returns the paper's Table 1: tested algorithms and their
// platforms.
func Table1Rows() [][2]string {
	return [][2]string{
		{AlgoGPApriori, "simulated GPU (gpusim, Tesla T10 model) + single thread CPU"},
		{AlgoCPUTest, "single thread CPU (static bitset, complete intersection)"},
		{AlgoBorgelt, "single thread CPU (vertical tidset)"},
		{AlgoBodon, "single thread CPU (trie over horizontal DB)"},
		{AlgoGoethals, "single thread CPU (horizontal candidate lists)"},
	}
}

// Table2Published holds the dataset statistics as printed in the paper.
var Table2Published = map[string]struct {
	Items  int
	AvgLen float64
	Trans  int
	Type   string
}{
	"T40I10D100K": {942, 40, 92113, "Synthetic"},
	"pumsb":       {2113, 74, 49046, "Real"},
	"chess":       {75, 37, 3196, "Real"},
	"accidents":   {468, 34, 340183, "Real"},
}

// RunResult is one algorithm's timing at one support point.
type RunResult struct {
	Algorithm     string
	Seconds       float64 // end-to-end (host measured + device modeled)
	DeviceSeconds float64 // modeled device component (GPApriori only)
	Itemsets      int
	Skipped       string // non-empty when the paper omits this combination
}

// SweepPoint is one x-axis point of a Figure 6 panel.
type SweepPoint struct {
	RelSupport float64
	MinSupport int
	Runs       []RunResult
}

// Run looks up a result by algorithm name.
func (p SweepPoint) Run(algo string) (RunResult, bool) {
	for _, r := range p.Runs {
		if r.Algorithm == algo {
			return r, true
		}
	}
	return RunResult{}, false
}

// Speedup returns time(base)/time(algo) at this point, or 0 when either
// run is missing or skipped.
func (p SweepPoint) Speedup(algo, base string) float64 {
	a, okA := p.Run(algo)
	b, okB := p.Run(base)
	if !okA || !okB || a.Skipped != "" || b.Skipped != "" || a.Seconds == 0 {
		return 0
	}
	return b.Seconds / a.Seconds
}

// Figure is one panel of Figure 6.
type Figure struct {
	ID      string // "6a".."6d"
	Dataset string
	Scale   float64
	Stats   dataset.Stats
	Points  []SweepPoint
}

// Options configures a harness run.
type Options struct {
	// Scale shrinks the generated datasets (1.0 = published size). The
	// default used by the fimbench tool is 0.05, which preserves density
	// and pattern depth while keeping CPU baselines tractable.
	Scale float64
	// Algorithms to run; nil = the paper's roster for that figure
	// (Goethals only on T40I10D100K, as in the paper).
	Algorithms []string
	// MaxLen bounds itemset length for all miners (0 = unbounded).
	MaxLen int
	// EraPopcount pins CPU bitset counting to the 2011-era table popcount.
	EraPopcount bool
	// Supports overrides the per-dataset sweep (nil = Figure 6 defaults).
	Supports []float64
	// BlockSize overrides the GPU kernel block size. The harness default
	// is 64 rather than the paper's 256: modeled time is virtually
	// identical (the kernel is memory-bound either way), but simulating
	// 4× fewer thread goroutines per block keeps the functional simulator
	// tractable on the host.
	BlockSize int
}

// figureIDs maps panels to datasets in the paper's order.
var figureIDs = map[string]string{
	"6a": "T40I10D100K",
	"6b": "pumsb",
	"6c": "chess",
	"6d": "accidents",
}

// FigureDataset returns the dataset name of a Figure 6 panel id.
func FigureDataset(id string) (string, error) {
	name, ok := figureIDs[id]
	if !ok {
		return "", fmt.Errorf("bench: unknown figure %q (have 6a..6d)", id)
	}
	return name, nil
}

// defaultAlgos returns the algorithm roster the paper plots for a dataset:
// Goethals appears only in 6(a) because it cannot finish the dense files.
func defaultAlgos(datasetName string) []string {
	algos := []string{AlgoGPApriori, AlgoCPUTest, AlgoBorgelt, AlgoBodon}
	if datasetName == "T40I10D100K" {
		algos = append(algos, AlgoGoethals)
	}
	return algos
}

// RunFigure regenerates one Figure 6 panel.
func RunFigure(id string, opt Options) (Figure, error) {
	name, err := FigureDataset(id)
	if err != nil {
		return Figure{}, err
	}
	if opt.Scale <= 0 {
		opt.Scale = 0.05
	}
	db, err := gen.Paper(name, opt.Scale)
	if err != nil {
		return Figure{}, err
	}
	supports := opt.Supports
	if supports == nil {
		if supports, err = gen.SupportSweeps(name); err != nil {
			return Figure{}, err
		}
	}
	algos := opt.Algorithms
	if algos == nil {
		algos = defaultAlgos(name)
	}

	fig := Figure{ID: id, Dataset: name, Scale: opt.Scale, Stats: db.Stats()}
	for _, rel := range supports {
		point := SweepPoint{RelSupport: rel, MinSupport: db.AbsoluteSupport(rel)}
		for _, algo := range algos {
			point.Runs = append(point.Runs, runOne(db, algo, point.MinSupport, opt))
		}
		fig.Points = append(fig.Points, point)
	}
	return fig, nil
}

// runOne executes one algorithm at one support threshold.
func runOne(db *dataset.DB, algo string, minSup int, opt Options) RunResult {
	acfg := apriori.Config{MaxLen: opt.MaxLen}
	res := RunResult{Algorithm: algo}
	kind := bitset.PopcountHardware
	if opt.EraPopcount {
		kind = bitset.PopcountTable8
	}
	switch algo {
	case AlgoGPApriori:
		kopt := kernels.DefaultOptions()
		kopt.BlockSize = 64
		if opt.BlockSize > 0 {
			kopt.BlockSize = opt.BlockSize
		}
		m, err := core.New(db, core.Options{Kernel: kopt})
		if err != nil {
			res.Skipped = err.Error()
			return res
		}
		rep, err := m.Mine(minSup, acfg)
		if err != nil {
			res.Skipped = err.Error()
			return res
		}
		res.Seconds = rep.TotalSeconds()
		res.DeviceSeconds = rep.Device.Total()
		res.Itemsets = rep.Result.Len()
	case AlgoCPUTest, AlgoBorgelt, AlgoBodon, AlgoGoethals:
		var counter apriori.Counter
		switch algo {
		case AlgoCPUTest:
			counter = apriori.NewCPUBitset(db, kind)
		case AlgoBorgelt:
			counter = apriori.NewBorgelt(db)
		case AlgoBodon:
			counter = apriori.NewBodon(db)
		case AlgoGoethals:
			counter = apriori.NewGoethals(db)
		}
		t0 := time.Now()
		rs, err := apriori.Mine(db, minSup, counter, acfg)
		if err != nil {
			res.Skipped = err.Error()
			return res
		}
		res.Seconds = time.Since(t0).Seconds()
		res.Itemsets = rs.Len()
	case AlgoEclat:
		t0 := time.Now()
		rs, err := eclat.Mine(db, minSup, eclat.Diffsets)
		if err != nil {
			res.Skipped = err.Error()
			return res
		}
		res.Seconds = time.Since(t0).Seconds()
		res.Itemsets = rs.Len()
	case AlgoFPGrowth:
		t0 := time.Now()
		rs, err := fpgrowth.Mine(db, minSup)
		if err != nil {
			res.Skipped = err.Error()
			return res
		}
		res.Seconds = time.Since(t0).Seconds()
		res.Itemsets = rs.Len()
	default:
		res.Skipped = fmt.Sprintf("unknown algorithm %q", algo)
	}
	return res
}

// WriteFigure prints a panel in the layout of the paper's Figure 6:
// per-support rows with absolute times and speedups relative to Borgelt,
// plus the GPApriori-vs-CPU_TEST acceleration column.
func WriteFigure(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "Figure %s — %s (scale %.3g: %d trans, %d items, avg len %.1f)\n",
		fig.ID, fig.Dataset, fig.Scale, fig.Stats.NumTrans, fig.Stats.NumItems, fig.Stats.AvgLength)
	fmt.Fprintf(w, "%-8s %-8s", "minsup", "|F|")
	algos := []string{}
	if len(fig.Points) > 0 {
		for _, r := range fig.Points[0].Runs {
			algos = append(algos, r.Algorithm)
			fmt.Fprintf(w, " %12s", r.Algorithm)
		}
	}
	fmt.Fprintf(w, " %14s %14s\n", "xBorgelt(GPU)", "xCPU_TEST(GPU)")
	for _, p := range fig.Points {
		sets := 0
		if r, ok := p.Run(AlgoGPApriori); ok {
			sets = r.Itemsets
		} else if len(p.Runs) > 0 {
			sets = p.Runs[0].Itemsets
		}
		fmt.Fprintf(w, "%-8.3g %-8d", p.RelSupport, sets)
		for _, algo := range algos {
			r, _ := p.Run(algo)
			if r.Skipped != "" {
				fmt.Fprintf(w, " %12s", "—")
			} else {
				fmt.Fprintf(w, " %12.4g", r.Seconds)
			}
		}
		fmt.Fprintf(w, " %14.1f %14.1f\n",
			p.Speedup(AlgoGPApriori, AlgoBorgelt),
			p.Speedup(AlgoGPApriori, AlgoCPUTest))
	}
}

// WriteTable1 prints the paper's Table 1.
func WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Tested frequent itemset mining algorithms")
	fmt.Fprintf(w, "%-12s %s\n", "Algorithm", "Platform")
	for _, row := range Table1Rows() {
		fmt.Fprintf(w, "%-12s %s\n", row[0], row[1])
	}
}

// WriteTable2 prints the paper's Table 2 side by side with the statistics
// of the generated stand-in datasets at the given scale.
func WriteTable2(w io.Writer, scale float64) error {
	if scale <= 0 {
		scale = 0.05
	}
	fmt.Fprintln(w, "Table 2 — Experimental datasets (paper value | generated stand-in)")
	fmt.Fprintf(w, "%-12s %16s %18s %22s %10s\n", "Dataset", "#Item", "Avg.length", "#Trans", "Type")
	for _, name := range gen.PaperDatasets {
		pub := Table2Published[name]
		db, err := gen.Paper(name, scale)
		if err != nil {
			return err
		}
		st := db.Stats()
		fmt.Fprintf(w, "%-12s %7d | %6d %8.0f | %7.1f %9d | %10d %10s\n",
			name, pub.Items, st.NumItems, pub.AvgLen, st.AvgLength,
			pub.Trans, st.NumTrans, pub.Type)
	}
	fmt.Fprintf(w, "(generated at scale %.3g of the published transaction count)\n", scale)
	return nil
}
