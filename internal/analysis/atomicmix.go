// The atomicmix analyzer: the classic /statsz-counter bug. A struct
// field incremented through sync/atomic in one place and read with a
// plain load in another is a data race the race detector only catches
// when the schedule cooperates — the plain access ignores both the
// atomicity and the memory-ordering the atomic side paid for, so a
// stats endpoint can serve torn or stale counts, and on 32-bit targets
// a torn 64-bit read is garbage. Mixing also defeats mutexes: guarding
// the plain side with a lock does not synchronize it against the
// atomic side, so "atomic writer, mutex reader" is still a race.
//
// The rule is mechanical: within a package, a struct field that
// appears as the pointer operand of a sync/atomic call (atomic.AddInt64
// (&s.n, 1), atomic.LoadUint32(&s.flag), ...) must be accessed through
// sync/atomic everywhere. Every plain selector read or write of such a
// field is flagged, with two sanctioned exceptions:
//
//   - composite-literal initialization (S{n: 0}): the value is not
//     shared yet;
//   - taking the field's address to pass to another sync/atomic call
//     (that IS the atomic discipline).
//
// Fields needing genuinely mixed access (e.g. a plain fast path
// proven single-threaded) carry //gpalint:ignore atomicmix <reason> —
// or better, migrate to the atomic.Int64 types, which make mixing
// inexpressible.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags struct fields accessed both through sync/atomic and
// by plain reads/writes.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid mixing sync/atomic and plain access to the same struct field " +
		"(atomic writers with plain readers race)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: find every field used as the pointer operand of a
	// sync/atomic call, and remember those operand expressions so pass
	// 2 does not count them as plain uses.
	atomicFields := map[*types.Var]token.Pos{}
	atomicOperands := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fieldOf(pass, sel); fld != nil {
					if _, seen := atomicFields[fld]; !seen {
						atomicFields[fld] = sel.Pos()
					}
					atomicOperands[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: every other selector resolving to one of those fields is
	// a plain access — unless it is a composite-literal init.
	type finding struct {
		pos token.Pos
		fld *types.Var
	}
	var findings []finding
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicOperands[sel] {
				return true
			}
			fld := fieldOf(pass, sel)
			if fld == nil {
				return true
			}
			if _, tracked := atomicFields[fld]; !tracked {
				return true
			}
			findings = append(findings, finding{sel.Pos(), fld})
			return true
		})
		// Composite literals initialize by field name, not selector;
		// keyed inits never produce SelectorExprs, so nothing to exempt
		// — but unkeyed literals positionally writing a tracked field
		// are invisible to this analyzer by construction (accepted:
		// tracked fields live in unexported sync-heavy structs built
		// with keyed literals in this repo).
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		atomicAt := pass.Fset.Position(atomicFields[f.fld])
		pass.Reportf(f.pos,
			"plain access to field %s, which is accessed atomically (e.g. %s:%d): "+
				"mixed atomic/plain access races; use sync/atomic everywhere or an atomic.%s",
			f.fld.Name(), shortPath(atomicAt.Filename), atomicAt.Line, atomicTypeFor(f.fld))
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic package
// function (the pointer-operand API; the atomic.Int64-style types
// cannot be mixed and need no checking).
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	fn := CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fld, _ := s.Obj().(*types.Var)
	return fld
}

// atomicTypeFor suggests the typed-atomic migration target.
func atomicTypeFor(fld *types.Var) string {
	if basic, ok := fld.Type().Underlying().(*types.Basic); ok {
		switch basic.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}

// shortPath trims a position filename to its base for stable messages
// across checkouts.
func shortPath(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
