// Generation-2 horizontal counting for the pipeline (DESIGN.md §14.4).
//
// The second generation is the miner's widest fan-out: every pair of
// frequent items is a candidate, C(|F1|,2) of them, and on sparse
// shapes almost all count infrequent (T40I10D100K at the Table 2 scale
// has 50,403 pair candidates and zero frequent pairs). Intersecting a
// bitset pair per candidate pays the full vector width for each, and
// materializing each candidate as a trie node pays an allocation that
// is immediately pruned.
//
// Agrawal's AIS/Apriori pair-matrix trick counts the whole generation
// horizontally instead: project each transaction onto the frequent
// items (rank space 0..f-1; transactions are strictly ascending item
// sets, so projections are sorted and duplicate-free) and bump a
// triangular counter for every in-transaction pair. One pass, exact
// supports, and only the frequent pairs ever become nodes.
//
// Which side wins is decided by an exact cost model, not a heuristic
// flag: one cheap scan computes the true number of counter increments
// Σ C(|proj(t)|,2), which is compared against the pair-intersection
// word traffic. Dense shapes (chess, pumsb, accidents — few frequent
// items, long projections) keep the bitset path; sparse ones switch.
//
// The count is partitioned by transaction ranges into per-block
// triangular arrays; uint32 addition is commutative, so the merged
// supports are identical for every worker count and block size.
package apriori

import (
	"gpapriori/internal/bitset"
	"gpapriori/internal/trie"
)

// triMaxPairs caps the triangular array at 64MB so a huge first
// generation cannot balloon resident memory behind the miner's back.
const triMaxPairs = 16 << 20

// triBlock is the minimum transactions per counting block; it bounds
// the number of per-block arrays (and the merge cost) on small inputs.
const triBlock = 1024

// planTriangle builds the item→rank projection and runs the cost
// model. It returns (ranks, true) when horizontal pair counting is
// cheaper than pair-at-a-time bitset intersection.
func (w *pipeWorker) planTriangle(kept []*trie.Node, pairs int) ([]int32, bool) {
	r := w.r
	words := bitset.AlignedWords(r.p.v.NumTrans)
	// The per-pair bitset cost: AND+popcount over the vector plus
	// per-candidate bookkeeping. Below a trivial total, skip even the
	// costing scan — the generation is cheap either way.
	bitCost := pairs * (words + 8)
	if pairs > triMaxPairs || bitCost < 256<<10 {
		return nil, false
	}
	ranks := make([]int32, r.p.db.NumItems())
	for i := range ranks {
		ranks[i] = -1
	}
	for i, n := range kept {
		ranks[n.Item] = int32(i)
	}
	scan, incs := 0, 0
	for _, tr := range r.p.db.Transactions() {
		scan += len(tr)
		pl := 0
		for _, it := range tr {
			if ranks[it] >= 0 {
				pl++
			}
		}
		incs += pl * (pl - 1) / 2
	}
	// Triangle cost: the projection scan (paid again while counting),
	// the exact increment count, and the final frequent-pair sweep.
	return ranks, scan+incs+pairs < bitCost
}

// startTriangle fans the pair count out over transaction blocks. Block
// arrays are allocated up front so counting tasks share nothing but
// read-only projection tables.
func (w *pipeWorker) startTriangle(kept []*trie.Node, pairs int, ranks []int32) {
	r := w.r
	f := len(kept)
	items := w.s.arena.Items(f)
	for _, n := range kept {
		items = append(items, n.Item)
	}
	off := make([]int32, f)
	o := int32(0)
	for i := 0; i < f-1; i++ {
		off[i] = o
		o += int32(f - 1 - i)
	}
	nt := r.p.db.Len()
	blocks := r.p.opt.Workers
	if mx := (nt + triBlock - 1) / triBlock; blocks > mx {
		blocks = mx
	}
	if blocks < 1 {
		blocks = 1
	}
	tj := &triJob{kept: kept, items: items, ranks: ranks, off: off,
		parts: make([][]uint32, blocks), block: (nt + blocks - 1) / blocks}
	tj.pending.Store(int32(blocks))
	tasks := make([]pipeTask, 0, blocks)
	for b := 0; b < blocks; b++ {
		lo := b * tj.block
		hi := lo + tj.block
		if hi > nt {
			hi = nt
		}
		tj.parts[b] = make([]uint32, pairs)
		tasks = append(tasks, pipeTask{tj: tj, lo: lo, hi: hi, idx: b})
	}
	r.submit(w.self, tasks...)
}

// countTriangle counts pair supports for transactions [lo,hi) into the
// block's private triangular array. Projections reuse the worker's
// rank buffer; the inner pair loop is the whole hot path.
func (w *pipeWorker) countTriangle(tj *triJob, lo, hi, idx int) {
	part := tj.parts[idx]
	ranks, off := tj.ranks, tj.off
	proj := w.s.proj
	for _, tr := range w.r.p.db.Transactions()[lo:hi] {
		proj = proj[:0]
		for _, it := range tr {
			if rk := ranks[it]; rk >= 0 {
				proj = append(proj, rk)
			}
		}
		for i := 0; i+1 < len(proj); i++ {
			a := proj[i]
			row := int(off[a]) - int(a) - 1
			for _, b := range proj[i+1:] {
				part[row+int(b)]++
			}
		}
	}
	w.s.proj = proj
}

// finishTriangle runs once, after every block has counted: merge the
// block arrays, materialize only the frequent pairs as trie nodes, and
// seed their classes as precounted families so generation 3 joins
// proceed through the normal machinery.
func (w *pipeWorker) finishTriangle(tj *triJob) error {
	r := w.r
	total := tj.parts[0]
	for _, part := range tj.parts[1:] {
		for i, c := range part {
			total[i] += c
		}
	}
	f := len(tj.kept)
	minsup := uint32(r.minsup)
	var tasks []pipeTask
	for a := 0; a < f-1; a++ {
		row := total[tj.off[a] : int(tj.off[a])+f-1-a]
		nf := 0
		for _, c := range row {
			if c >= minsup {
				nf++
			}
		}
		if nf == 0 {
			continue
		}
		x := tj.kept[a]
		x.Children = w.s.arena.NodePtrs(nf)
		for j, c := range row {
			if c >= minsup {
				n := w.s.arena.NewNode(tj.items[a+1+j], 2)
				n.Support = int(c)
				x.Children = append(x.Children, n)
			}
		}
		if nf < 2 {
			continue // nothing to join under this class
		}
		fam := &pipeFamily{parent: x, k: 2, precounted: true}
		fam.prefix = append(w.s.arena.Items(1), x.Item)
		tasks = append(tasks, pipeTask{fam: fam, lo: -1})
	}
	if len(tasks) > 0 {
		r.submit(w.self, tasks...)
	}
	return nil
}
