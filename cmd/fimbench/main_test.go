package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFimbenchTable1(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "1", "", "", false, 0.01, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFimbenchTable2(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "2", "", "", false, 0.005, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, name := range []string{"chess", "pumsb", "accidents", "T40I10D100K"} {
		if !strings.Contains(s, name) {
			t.Fatalf("Table 2 missing %s:\n%s", name, s)
		}
	}
}

func TestFimbenchFigurePanel(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "6c", "", false, 0.03, true, 32, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 6c") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFimbenchExtension(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", "e4", false, 0.004, false, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E4") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestFimbenchValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "", "", false, 0.05, false, 0, 0); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run(&out, "", "9z", "", false, 0.05, false, 0, 0); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run(&out, "", "", "e9", false, 0.05, false, 0, 0); err == nil {
		t.Fatal("unknown extension accepted")
	}
}
