// The faultpath analyzer: outside the simulator itself, device kernel
// launches and transfers must go through gpusim's Try* wrappers. The
// bare Launch/CopyToDevice/CopyFromDevice methods panic-or-ignore on an
// armed fault injector, so a bare call on any path reachable under
// fault injection (core failover, cluster recovery, the jobs breaker's
// probes) silently bypasses the watchdog, the retry accounting, and
// the dead-device bookkeeping that failover correctness rests on.
//
// The same discipline governs the disk: in the durability packages
// (internal/server, internal/checkpoint) every rename and fsync must go
// through the internal/fsfault seam, whose crashpoints and injected
// faults are what the chaos torture test and the degraded-mode tests
// exercise. A direct os.Rename or (*os.File).Sync there is a write the
// resilience machinery cannot see — it dodges fault injection in tests
// and crashpoint coverage in the torture harness.
package analysis

import (
	"go/ast"
	"strings"
)

// bareDeviceOps are the gpusim.Device methods that skip fault
// injection; TryLaunch/TryCopyToDevice/TryCopyFromDevice are the
// sanctioned equivalents.
var bareDeviceOps = map[string]string{
	"Launch":         "TryLaunch",
	"CopyToDevice":   "TryCopyToDevice",
	"CopyFromDevice": "TryCopyFromDevice",
}

// DurabilityPkgs are the final import-path segments of the packages
// whose disk writes must flow through the internal/fsfault seam.
var DurabilityPkgs = map[string]bool{
	"server":     true,
	"checkpoint": true,
}

// FaultPath flags bare gpusim.Device operations outside package gpusim,
// and — in the durability packages — direct os.Rename/(*os.File).Sync
// calls that bypass the fsfault seam.
var FaultPath = &Analyzer{
	Name: "faultpath",
	Doc: "forbid bare gpusim.Device Launch/Copy* calls outside package gpusim " +
		"(fault-aware paths must use the Try* wrappers), and direct " +
		"os.Rename/(*os.File).Sync in the durability packages " +
		"(use the internal/fsfault seam)",
	Run: runFaultPath,
}

func runFaultPath(pass *Pass) error {
	if PkgBase(pass.PkgPath) == "gpusim" {
		return nil
	}
	durability := DurabilityPkgs[PkgBase(pass.PkgPath)]
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if durability {
			checkDurabilityCall(pass, call)
		}
		named := ReceiverNamed(pass.TypesInfo, call)
		if named == nil || named.Obj().Name() != "Device" {
			return true
		}
		pkg := named.Obj().Pkg()
		if pkg == nil || !strings.HasSuffix(pkg.Path(), "internal/gpusim") {
			return true
		}
		fn := CalleeFunc(pass.TypesInfo, call)
		if try, bare := bareDeviceOps[fn.Name()]; bare {
			pass.Reportf(call.Pos(),
				"bare gpusim.Device.%s on a fault-aware path: use %s so injected faults hit the watchdog/retry machinery",
				fn.Name(), try)
		}
		return true
	})
	return nil
}

// checkDurabilityCall flags direct rename/fsync calls in a durability
// package: both must route through internal/fsfault so injected disk
// faults and crashpoints cover them.
func checkDurabilityCall(pass *Pass, call *ast.CallExpr) {
	if IsPkgFunc(pass.TypesInfo, call, "os", "Rename") {
		pass.Reportf(call.Pos(),
			"direct os.Rename on a durability path: use fsfault.Rename so injected faults and crashpoints cover it")
		return
	}
	named := ReceiverNamed(pass.TypesInfo, call)
	if named == nil || named.Obj().Name() != "File" {
		return
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Path() != "os" {
		return
	}
	if fn := CalleeFunc(pass.TypesInfo, call); fn != nil && fn.Name() == "Sync" {
		pass.Reportf(call.Pos(),
			"direct (*os.File).Sync on a durability path: write through fsfault.Create so injected faults and crashpoints cover it")
	}
}
