package gen

import (
	"fmt"
	"sort"

	"gpapriori/internal/dataset"
)

// PaperDatasets lists the names of the four Table 2 benchmark datasets in
// the order the paper presents them (Figure 6 a–d).
var PaperDatasets = []string{"T40I10D100K", "pumsb", "chess", "accidents"}

// Paper generates the named Table 2 dataset stand-in at the given scale.
// scale multiplies the transaction count (1.0 = the published size); the
// item universe and per-row structure are unchanged so density and
// item-frequency skew — the knobs Apriori cost depends on — stay faithful
// at reduced scale. Scales above 1 are allowed (the generators simply run
// longer).
func Paper(name string, scale float64) (*dataset.DB, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("gen: scale %v must be positive", scale)
	}
	switch name {
	case "T40I10D100K":
		cfg := T40I10D100K()
		cfg.NumTrans = scaled(cfg.NumTrans, scale)
		return Quest(cfg), nil
	case "chess":
		cfg := Chess()
		cfg.NumTrans = scaled(cfg.NumTrans, scale)
		return AttributeValue(cfg), nil
	case "pumsb":
		cfg := Pumsb()
		cfg.NumTrans = scaled(cfg.NumTrans, scale)
		return AttributeValue(cfg), nil
	case "accidents":
		cfg := Accidents()
		cfg.NumTrans = scaled(cfg.NumTrans, scale)
		return Mixed(cfg), nil
	default:
		return nil, fmt.Errorf("gen: unknown paper dataset %q (have %v)", name, PaperDatasets)
	}
}

func scaled(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// SupportSweeps returns, per dataset, the relative minimum-support points
// swept in Figure 6. The paper sweeps high→low support (left to right on
// its x-axes); dense datasets need much higher thresholds than the sparse
// synthetic one to keep the pattern explosion bounded, exactly as in the
// FIMI evaluations the paper follows.
func SupportSweeps(name string) ([]float64, error) {
	switch name {
	case "T40I10D100K":
		return []float64{0.05, 0.04, 0.03, 0.02, 0.015, 0.01}, nil
	case "pumsb":
		return []float64{0.95, 0.925, 0.9, 0.875, 0.85}, nil
	case "chess":
		return []float64{0.9, 0.85, 0.8, 0.75, 0.7}, nil
	case "accidents":
		return []float64{0.6, 0.5, 0.45, 0.4, 0.35}, nil
	default:
		return nil, fmt.Errorf("gen: unknown paper dataset %q", name)
	}
}

// Small returns a tiny deterministic database handy for examples and unit
// tests: the worked example of the paper's Figure 2.
func Small() *dataset.DB {
	// Figure 2(A): four transactions over items 1..7.
	return dataset.New([][]dataset.Item{
		{1, 2, 3, 4, 5},
		{2, 3, 4, 5, 6},
		{3, 4, 6, 7},
		{1, 3, 4, 5, 6},
	})
}

// Random produces a uniform random database for property tests: numTrans
// transactions, each a uniform subset of [0,numItems) with inclusion
// probability p, seeded deterministically.
func Random(numTrans, numItems int, p float64, seed int64) *dataset.DB {
	rng := newRand(seed)
	db := dataset.New(nil)
	row := make([]dataset.Item, 0, numItems)
	for t := 0; t < numTrans; t++ {
		row = row[:0]
		for i := 0; i < numItems; i++ {
			if rng.Float64() < p {
				row = append(row, dataset.Item(i))
			}
		}
		if len(row) > 0 {
			db.Append(row)
		}
	}
	return db
}

// TopItemsByFrequency returns item ids ordered by descending support,
// useful for inspecting generated skew in tests and examples.
func TopItemsByFrequency(db *dataset.DB) []dataset.Item {
	sup := db.ItemSupports()
	ids := make([]dataset.Item, len(sup))
	for i := range ids {
		ids[i] = dataset.Item(i)
	}
	sort.SliceStable(ids, func(a, b int) bool { return sup[ids[a]] > sup[ids[b]] })
	return ids
}
