package bitset

import "math/bits"

// PopcountKind selects a population-count implementation. The paper's 2011
// CPU baselines predate ubiquitous hardware POPCNT use, so the benchmark
// harness can pin the CPU side to an era-faithful software popcount while
// correctness tests use the hardware one. All kinds are exact.
type PopcountKind int

const (
	// PopcountHardware uses math/bits.OnesCount64 (compiles to POPCNT).
	PopcountHardware PopcountKind = iota
	// PopcountTable8 is the classic 8-bit lookup table, the common
	// software popcount of 2011-era CPU miners.
	PopcountTable8
	// PopcountKernighan clears the lowest set bit per step — O(bits set),
	// the naive fallback.
	PopcountKernighan
)

var table8 [256]uint8

func init() {
	for i := range table8 {
		table8[i] = uint8(bits.OnesCount8(uint8(i)))
	}
}

// Func returns the counting function for the kind.
func (k PopcountKind) Func() func(uint64) int {
	switch k {
	case PopcountTable8:
		return popcountTable8
	case PopcountKernighan:
		return popcountKernighan
	default:
		return bits.OnesCount64
	}
}

// String names the kind for reports.
func (k PopcountKind) String() string {
	switch k {
	case PopcountTable8:
		return "table8"
	case PopcountKernighan:
		return "kernighan"
	default:
		return "hardware"
	}
}

func popcountTable8(w uint64) int {
	return int(table8[w&0xff]) + int(table8[w>>8&0xff]) + int(table8[w>>16&0xff]) +
		int(table8[w>>24&0xff]) + int(table8[w>>32&0xff]) + int(table8[w>>40&0xff]) +
		int(table8[w>>48&0xff]) + int(table8[w>>56])
}

func popcountKernighan(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// IntersectCountManyWith is IntersectCountMany with an explicit popcount
// implementation, used by the era-calibration benchmarks.
func IntersectCountManyWith(vs []*Bitset, popc func(uint64) int) int {
	if len(vs) == 0 {
		panic("bitset: IntersectCountManyWith on empty slice")
	}
	width := vs[0].nbits
	words := len(vs[0].words)
	for _, v := range vs[1:] {
		if v.nbits != width {
			panic("bitset: IntersectCountManyWith width mismatch")
		}
	}
	n := 0
	for w := 0; w < words; w++ {
		acc := vs[0].words[w]
		for _, v := range vs[1:] {
			acc &= v.words[w]
			if acc == 0 {
				break
			}
		}
		n += popc(acc)
	}
	return n
}
