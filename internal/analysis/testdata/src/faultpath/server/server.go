// Hit cases: the import path ends in "server" — a durability package —
// so renames and fsyncs must flow through the fsfault seam.
package server

import (
	"os"

	"gpapriori/internal/fsfault"
)

func bareDiskOps(f *os.File) error {
	if err := f.Sync(); err != nil { // want `direct \(\*os.File\).Sync on a durability path`
		return err
	}
	return os.Rename("pending.json.tmp", "pending.json") // want `direct os.Rename on a durability path`
}

func sanctionedDiskOps(dir string) error {
	tmp, err := fsfault.Create(dir, "pending.json.tmp*")
	if err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil { // fsfault.File, not os.File: in seam, fine
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fsfault.Rename(tmp.Name(), dir+"/pending.json")
}

// otherOsCalls proves only rename and fsync are fenced — reads, stats,
// and removes have no atomicity story to protect.
func otherOsCalls(path string) {
	os.Stat(path)
	os.Remove(path)
	os.ReadFile(path)
}

// nameCollision proves the check keys on the receiver type, not the
// method name.
type journal struct{}

func (journal) Sync() error { return nil }

func syncCollision(j journal) {
	j.Sync()
}
