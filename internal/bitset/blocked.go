package bitset

import (
	"fmt"
	"math/bits"
)

// DefaultTileWords is the default word-tile width of the blocked counting
// paths: 512 × 8 bytes = 4 KiB per vector tile, so a prefix-class base
// tile plus a handful of candidate tiles fit comfortably in a 32 KiB L1
// while still amortizing the per-tile bookkeeping.
const DefaultTileWords = 512

// AndCountWith is AndCount with an explicit popcount implementation, for
// the era-calibration paths that pin the 2011 software popcount.
func (b *Bitset) AndCountWith(o *Bitset, popc func(uint64) int) int {
	if b.nbits != o.nbits {
		panic(fmt.Sprintf("bitset: AndCountWith width mismatch %d/%d", b.nbits, o.nbits))
	}
	n := 0
	for i, w := range b.words {
		n += popc(w & o.words[i])
	}
	return n
}

// IntersectInto materializes AND of all vs into dst — how a prefix class's
// shared intersection is built once before being reused for every
// candidate in the class. dst may alias vs[0].
func IntersectInto(dst *Bitset, vs []*Bitset) {
	if len(vs) == 0 {
		panic("bitset: IntersectInto on empty slice")
	}
	for _, v := range vs {
		if v.nbits != dst.nbits {
			panic(fmt.Sprintf("bitset: IntersectInto width mismatch %d/%d", dst.nbits, v.nbits))
		}
	}
	dw := dst.words
	copy(dw, vs[0].words)
	for _, v := range vs[1:] {
		vw := v.words
		for i := range dw {
			dw[i] &= vw[i]
		}
	}
}

// BatchCounter is the reusable scratch of the prefix-class counting
// path. All per-batch state (done flags, suffix popcounts) lives on the
// counter and is grown once, so steady-state counting performs zero
// allocations. A BatchCounter is not safe for concurrent use; parallel
// counters keep one per worker.
type BatchCounter struct {
	popc      func(uint64) int
	tileWords int
	done      []bool
	suffix    []int
}

// NewBatchCounter returns a counter using the given popcount
// implementation and tile width (0 = DefaultTileWords).
func NewBatchCounter(kind PopcountKind, tileWords int) *BatchCounter {
	if tileWords <= 0 {
		tileWords = DefaultTileWords
	}
	return &BatchCounter{popc: kind.Func(), tileWords: tileWords}
}

// TileWords returns the counter's word-tile width.
func (c *BatchCounter) TileWords() int { return c.tileWords }

// grow readies the per-candidate scratch for a batch of n candidates over
// vectors of `words` words.
func (c *BatchCounter) grow(n, words int) {
	if cap(c.done) < n {
		c.done = make([]bool, n)
	}
	c.done = c.done[:n]
	for i := range c.done {
		c.done[i] = false
	}
	tiles := (words + c.tileWords - 1) / c.tileWords
	if cap(c.suffix) < tiles+1 {
		c.suffix = make([]int, tiles+1)
	}
	c.suffix = c.suffix[:tiles+1]
}

// CountPairs computes out[i] = popcount(base AND others[i]) for every i,
// iterating word-tiles across the batch so base's tile stays
// cache-resident while each candidate's tile streams past it — the
// prefix-class inner loop (base is the class's shared intersection,
// others are the candidates' last-item vectors).
//
// minsup > 0 enables early abort: base's per-tile popcounts bound the
// bits any candidate can still gain, and a candidate that can no longer
// reach minsup is abandoned. Aborted candidates report their partial
// count, which is guaranteed below minsup, so frequent/infrequent
// classification — and every reported frequent support — is identical to
// the exhaustive count.
//
// out must have len(others). Widths must all match base's.
func (c *BatchCounter) CountPairs(base *Bitset, others []*Bitset, minsup int, out []int) {
	if len(out) != len(others) {
		panic(fmt.Sprintf("bitset: CountPairs out length %d, want %d", len(out), len(others)))
	}
	if len(others) == 0 {
		return
	}
	words := len(base.words)
	for _, o := range others {
		if o.nbits != base.nbits {
			panic(fmt.Sprintf("bitset: CountPairs width mismatch %d/%d", base.nbits, o.nbits))
		}
	}
	popc := c.popc
	bw := base.words

	// Single-tile fast path: when the whole vector fits one tile, the
	// early-abort bound can never fire before the count is already exact,
	// so the done/suffix bookkeeping is pure overhead — and at the Table 2
	// benchmark scales every shape's vectors fit one tile.
	if words <= c.tileWords {
		for i, o := range others {
			ow := o.words
			n := 0
			for j, w := range bw {
				n += popc(w & ow[j])
			}
			out[i] = n
		}
		return
	}
	c.grow(len(others), words)

	// Suffix popcounts of base per tile: suffix[t] is the number of base
	// bits at or after tile t — the tightest cheap bound on what a
	// candidate can still gain (count_i ≤ current + suffix[t+1]).
	tiles := len(c.suffix) - 1
	c.suffix[tiles] = 0
	for t := tiles - 1; t >= 0; t-- {
		lo := t * c.tileWords
		hi := lo + c.tileWords
		if hi > words {
			hi = words
		}
		n := 0
		for _, w := range bw[lo:hi] {
			n += bits.OnesCount64(w)
		}
		c.suffix[t] = c.suffix[t+1] + n
	}

	for i := range out {
		out[i] = 0
	}
	live := len(others)
	for t := 0; t < tiles && live > 0; t++ {
		lo := t * c.tileWords
		hi := lo + c.tileWords
		if hi > words {
			hi = words
		}
		tile := bw[lo:hi]
		rest := c.suffix[t+1]
		for i, o := range others {
			if c.done[i] {
				continue
			}
			ow := o.words[lo:hi]
			n := out[i]
			for j, w := range tile {
				n += popc(w & ow[j])
			}
			out[i] = n
			if minsup > 0 && n+rest < minsup {
				c.done[i] = true
				live--
			}
		}
	}
}
